//! # ssync-kv
//!
//! An in-memory key-value store with Memcached's locking structure, the
//! native counterpart of the paper's Section 6.4 testbed:
//!
//! * a fixed-bucket hash table under **fine-grained bucket locks** (one
//!   lock per stripe of buckets, as Memcached stripes item locks);
//! * a **global maintenance lock** taken periodically by write paths
//!   (Memcached's hash-table expansion and LRU/slab bookkeeping switch
//!   to global locks "for short periods of time");
//! * byte-string values (`bytes::Bytes`) with per-item CAS versions.
//!
//! Every lock is a pluggable `ssync-locks` algorithm — the paper's
//! experiment is literally "replace the Pthread mutexes with the
//! interface provided by libslock", which here is a type parameter.
//!
//! # The lock-free read fast path
//!
//! The paper's core lesson is that scalability is decided by cache-line
//! transfers, not algorithmic cleverness — and a read that takes even an
//! uncontended stripe lock pays two RMWs on a *writable* line that every
//! other reader of the stripe also writes. Since reads dominate serving
//! workloads (YCSB-B is 95% reads, YCSB-C is 100%), the store offers an
//! **optimistic read path** ([`ReadPath::Optimistic`], the default) in
//! the OPTIK/ASCYLIB tradition of the paper's authors:
//!
//! * Each bucket chain is a singly-linked list of **immutable** heap
//!   nodes; every mutation (insert, replace, unlink) is published by a
//!   *single* atomic pointer store, so a reader can never observe a
//!   half-written item.
//! * Each stripe carries a seqlock-style **version word** (even =
//!   stable, odd = writer inside). Readers snapshot it, traverse the
//!   bucket without any lock, and validate the word is unchanged; after
//!   [`OPTIMISTIC_ATTEMPTS`] failed validations they fall back to the
//!   locked path (counted in [`Stats::read_fallbacks`]), so sustained
//!   write pressure degrades to exactly the old behaviour instead of
//!   livelocking.
//! * **Writers stay locked.** All mutations run inside the existing
//!   per-stripe `Lock<_, R>` critical section and bump the version word
//!   there, so all four lock algorithm classes keep working unchanged
//!   and the replication layer's version gates
//!   ([`KvStore::apply_replicated`]) are untouched. The stripe lock is
//!   what makes the single-pointer publication protocol sound: there is
//!   never more than one writer linking nodes into a stripe.
//! * **Unlinked nodes are retired, not freed — and reclaimed by
//!   epochs.** A reader racing a writer may still hold a pointer to a
//!   just-unlinked node, so writers push replaced/deleted nodes into
//!   per-stripe three-generation bags tagged with the store's
//!   [`EpochDomain`] epoch. Optimistic readers pin the epoch for the
//!   duration of a traversal (one thread-local padded store plus one
//!   Acquire load — no shared RMW on the read path); a bag frees once
//!   the global epoch has advanced twice past its tag, which the pin
//!   provably blocks while any reader could still reach its nodes (see
//!   `ssync_core::epoch` for the grace-period proof). Advances and
//!   collection are amortized into the write path's maintenance cadence
//!   and the explicit [`KvStore::reclaim_pass`] hook the serve loops
//!   call, so a store under sustained churn reclaims *concurrently
//!   with live readers* and its retired backlog
//!   ([`KvStore::reclaim_backlog`]) stays bounded by the write volume
//!   of a couple of epochs. [`KvStore::purge_retired`] (`&mut self`)
//!   survives as the shutdown path: it drains every generation
//!   unconditionally, exclusivity standing in for the grace period.
//!
//! # Examples
//!
//! ```
//! use ssync_kv::KvStore;
//! use ssync_locks::TicketLock;
//!
//! let kv: KvStore<TicketLock> = KvStore::new(1024, 64);
//! kv.set(b"key", b"value".as_slice());
//! assert_eq!(kv.get(b"key").unwrap().as_ref(), b"value");
//! assert!(kv.delete(b"key"));
//! ```

use core::ptr;

/// Crate-local alias for the workspace atomic facade: real
/// `core::sync::atomic` types in production builds, `ssync-chk` shadow
/// atomics under `RUSTFLAGS='--cfg ssync_chk'`.
pub(crate) mod sync {
    pub(crate) use ssync_core::sync::{atomic, cpu_relax};
}

use std::sync::Arc;

use crate::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use bytes::Bytes;

use ssync_core::epoch::{EpochBags, EpochDomain};
use ssync_core::CachePadded;
use ssync_locks::{Lock, RawLock};

/// Write operations between global maintenance passes (Memcached's
/// rebalancer wakes periodically; we trigger on write counts to stay
/// deterministic).
pub const MAINTENANCE_PERIOD: u64 = 64;

/// Optimistic read attempts before a read falls back to the locked
/// path. Small on purpose: a failed validation means a writer is
/// actively mutating the stripe, and under sustained write pressure
/// spinning on the version word would just re-run the traversal — the
/// locked path *waits its turn* instead.
pub const OPTIMISTIC_ATTEMPTS: usize = 3;

/// Which read protocol `get`/`get_with_version`/`version`/`multi_get`
/// use. Writers are identical under both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPath {
    /// Take the stripe lock for every read (the original Memcached
    /// model: two RMWs on the stripe's lock line per lookup).
    Locked,
    /// Seqlock-validated lock-free reads with a locked fallback after
    /// [`OPTIMISTIC_ATTEMPTS`] failed validations.
    #[default]
    Optimistic,
}

impl ReadPath {
    /// Short display name for benchmark labels.
    pub fn label(self) -> &'static str {
        match self {
            ReadPath::Locked => "locked",
            ReadPath::Optimistic => "optimistic",
        }
    }
}

/// How retired nodes are reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReclaimMode {
    /// Epoch-based: advances and collection amortized over write
    /// traffic and [`KvStore::reclaim_pass`], concurrent with readers;
    /// the backlog stays bounded under sustained churn.
    #[default]
    Epoch,
    /// The PR-5 graveyard semantics: nothing is freed until
    /// [`KvStore::purge_retired`] / drop, so the backlog grows with
    /// every replacement and delete. Kept as the churn-soak benchmark's
    /// unbounded baseline.
    Deferred,
}

impl ReclaimMode {
    /// Short display name for benchmark labels.
    pub fn label(self) -> &'static str {
        match self {
            ReclaimMode::Epoch => "epoch",
            ReclaimMode::Deferred => "deferred",
        }
    }
}

/// One stored item: a bucket-chain node. `key`, `value` and `version`
/// are immutable after the node is published (an update allocates a
/// replacement node); only `next` is ever rewritten, and only by the
/// stripe's (lock-serialized) writer.
struct Node {
    key: Bytes,
    value: Bytes,
    /// CAS version (Memcached's `cas` token).
    version: u64,
    // chk: per-item chain link, deliberately unpadded — padding every
    // node would grow each item by a cache line, and the link is
    // written only by the lock-serialized writer.
    next: AtomicPtr<Node>,
}

/// Statistics counters (all monotonic). Each counter is padded to its
/// own cache-line pair: the counters are bumped from every client of a
/// shard, and adjacent unpadded `AtomicU64`s would false-share — a
/// coherence tax on every operation even when the data path itself is
/// uncontended.
#[derive(Debug, Default)]
pub struct Stats {
    /// Successful `get`s.
    pub hits: CachePadded<AtomicU64>,
    /// `get`s for absent keys.
    pub misses: CachePadded<AtomicU64>,
    /// `set` operations.
    pub sets: CachePadded<AtomicU64>,
    /// Successful `delete`s (deletes of absent keys are not counted).
    pub deletes: CachePadded<AtomicU64>,
    /// `cas` attempts rejected for a stale version or absent key.
    pub cas_failures: CachePadded<AtomicU64>,
    /// Global maintenance passes executed.
    pub maintenance_runs: CachePadded<AtomicU64>,
    /// Replicated operations applied ([`KvStore::apply_replicated`]
    /// calls that changed the store — streamed or replayed from a log).
    pub repl_applied: CachePadded<AtomicU64>,
    /// Replicated operations dropped by the version gate (duplicate or
    /// out-of-date deliveries; the idempotency the replication layer
    /// counts on).
    pub repl_stale_drops: CachePadded<AtomicU64>,
    /// Replica reads bounced back to the primary (the replica was
    /// behind the client's read floor, or down). Incremented by the
    /// replica server, not the store itself.
    pub replica_read_fallbacks: CachePadded<AtomicU64>,
    /// Optimistic reads that exhausted [`OPTIMISTIC_ATTEMPTS`] and took
    /// the stripe lock instead (always zero on [`ReadPath::Locked`]).
    pub read_fallbacks: CachePadded<AtomicU64>,
    /// Requests bounced with a `WrongShard` redirect because this
    /// store's server no longer (or does not yet) own the key's
    /// routing slot under the current cluster-map epoch. Incremented
    /// by the cluster node server, not the store itself.
    pub wrong_shard_redirects: CachePadded<AtomicU64>,
    /// Client writes deferred while their routing slot was frozen for
    /// a migration's final delta drain (the write-unavailability
    /// window of a resharding cutover). Incremented by the cluster
    /// node server, not the store itself.
    pub migration_ops_deferred: CachePadded<AtomicU64>,
    /// Global-epoch advances won by this store's maintenance passes and
    /// [`KvStore::reclaim_pass`] calls.
    pub epochs_advanced: CachePadded<AtomicU64>,
    /// Retired nodes freed by epoch collection (inline at retire, at
    /// maintenance, in `reclaim_pass`, or by the shutdown purge).
    pub nodes_reclaimed: CachePadded<AtomicU64>,
}

impl Stats {
    /// A plain-value copy of every counter. Each counter is read
    /// independently (`Relaxed`), so a snapshot taken while writers
    /// are active is a consistent *per-counter* view, not a
    /// cross-counter atomic one.
    ///
    /// Crate-internal on purpose: `reclaim_backlog` is a gauge owned
    /// by the store's stripes, not a `Stats` counter, so this copy
    /// leaves it zero — [`KvStore::stats_snapshot`] is the public
    /// view, with the gauge filled in.
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            maintenance_runs: self.maintenance_runs.load(Ordering::Relaxed),
            repl_applied: self.repl_applied.load(Ordering::Relaxed),
            repl_stale_drops: self.repl_stale_drops.load(Ordering::Relaxed),
            replica_read_fallbacks: self.replica_read_fallbacks.load(Ordering::Relaxed),
            read_fallbacks: self.read_fallbacks.load(Ordering::Relaxed),
            wrong_shard_redirects: self.wrong_shard_redirects.load(Ordering::Relaxed),
            migration_ops_deferred: self.migration_ops_deferred.load(Ordering::Relaxed),
            epochs_advanced: self.epochs_advanced.load(Ordering::Relaxed),
            nodes_reclaimed: self.nodes_reclaimed.load(Ordering::Relaxed),
            reclaim_backlog: 0,
        }
    }
}

/// Plain-struct copy of [`Stats`] plus the `reclaim_backlog` gauge,
/// as returned by [`KvStore::stats_snapshot`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Successful `get`s.
    pub hits: u64,
    /// `get`s for absent keys.
    pub misses: u64,
    /// `set` operations.
    pub sets: u64,
    /// Successful `delete`s.
    pub deletes: u64,
    /// Rejected `cas` attempts.
    pub cas_failures: u64,
    /// Global maintenance passes executed.
    pub maintenance_runs: u64,
    /// Replicated operations applied.
    pub repl_applied: u64,
    /// Replicated operations dropped by the version gate.
    pub repl_stale_drops: u64,
    /// Replica reads bounced back to the primary.
    pub replica_read_fallbacks: u64,
    /// Optimistic reads that fell back to the locked path.
    pub read_fallbacks: u64,
    /// Requests bounced with a `WrongShard` redirect.
    pub wrong_shard_redirects: u64,
    /// Client writes deferred during a migration freeze window.
    pub migration_ops_deferred: u64,
    /// Global-epoch advances won.
    pub epochs_advanced: u64,
    /// Retired nodes freed by epoch collection.
    pub nodes_reclaimed: u64,
    /// Retired nodes currently awaiting reclamation. A **gauge**, not a
    /// monotonic counter: [`StatsSnapshot::merge`] sums it across
    /// shards, but [`StatsSnapshot::delta`] carries the *current* value
    /// through instead of subtracting (a backlog can shrink).
    pub reclaim_backlog: u64,
}

impl StatsSnapshot {
    /// Field-wise sum, for aggregating shards.
    pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            sets: self.sets + other.sets,
            deletes: self.deletes + other.deletes,
            cas_failures: self.cas_failures + other.cas_failures,
            maintenance_runs: self.maintenance_runs + other.maintenance_runs,
            repl_applied: self.repl_applied + other.repl_applied,
            repl_stale_drops: self.repl_stale_drops + other.repl_stale_drops,
            replica_read_fallbacks: self.replica_read_fallbacks + other.replica_read_fallbacks,
            read_fallbacks: self.read_fallbacks + other.read_fallbacks,
            wrong_shard_redirects: self.wrong_shard_redirects + other.wrong_shard_redirects,
            migration_ops_deferred: self.migration_ops_deferred + other.migration_ops_deferred,
            epochs_advanced: self.epochs_advanced + other.epochs_advanced,
            nodes_reclaimed: self.nodes_reclaimed + other.nodes_reclaimed,
            reclaim_backlog: self.reclaim_backlog + other.reclaim_backlog,
        }
    }

    /// Field-wise difference against an `earlier` snapshot of the same
    /// (monotonic) counters — the per-phase delta reports are built on.
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            sets: self.sets - earlier.sets,
            deletes: self.deletes - earlier.deletes,
            cas_failures: self.cas_failures - earlier.cas_failures,
            maintenance_runs: self.maintenance_runs - earlier.maintenance_runs,
            repl_applied: self.repl_applied - earlier.repl_applied,
            repl_stale_drops: self.repl_stale_drops - earlier.repl_stale_drops,
            replica_read_fallbacks: self.replica_read_fallbacks - earlier.replica_read_fallbacks,
            read_fallbacks: self.read_fallbacks - earlier.read_fallbacks,
            wrong_shard_redirects: self.wrong_shard_redirects - earlier.wrong_shard_redirects,
            migration_ops_deferred: self.migration_ops_deferred - earlier.migration_ops_deferred,
            epochs_advanced: self.epochs_advanced - earlier.epochs_advanced,
            nodes_reclaimed: self.nodes_reclaimed - earlier.nodes_reclaimed,
            // A gauge, not a counter: the delta report shows where the
            // backlog *stands*, and subtraction could underflow.
            reclaim_backlog: self.reclaim_backlog,
        }
    }
}

/// Writer-side bookkeeping, held under the stripe lock: the nodes
/// unlinked from this stripe's chains, parked in three-generation
/// epoch bags until their tag ages past the grace period. They stay
/// allocated because an optimistic reader may still be dereferencing
/// them; see the module docs.
struct StripeInner {
    bags: EpochBags<*mut Node>,
}

// SAFETY: the raw pointers are owned exclusively by the stripe — they
// are pushed and read only while holding the stripe lock (or `&mut
// KvStore` for purge/drop), never aliased mutably, and point to
// heap nodes that outlive the bag entries.
unsafe impl Send for StripeInner {}

/// One lock stripe: the seqlock word, the bucket-chain heads this
/// stripe owns, and the writer lock with its retirement bags.
struct Stripe<R: RawLock> {
    /// Seqlock version word: even = stable, odd = a writer is inside
    /// the critical section. Padded — it is read by every optimistic
    /// reader of the stripe and written by every writer.
    seq: CachePadded<AtomicU64>,
    /// Bucket-chain heads. The slice itself is immutable after
    /// construction; each head is mutated only under the stripe lock.
    // chk: a dense array by design (padding B buckets would multiply
    // the table's footprint by 8); heads are read-mostly, and writer
    // traffic is already serialized per stripe.
    heads: Box<[AtomicPtr<Node>]>,
    /// Nodes parked in this stripe's bags: the lock-free backlog gauge
    /// behind [`KvStore::reclaim_backlog`]. Written only under the
    /// stripe lock (the retire-side `SeqCst` bump doubles as the flush
    /// that commits the unlink before the epoch tag is read — see
    /// [`KvStore::retire`]); read `Relaxed` by anyone.
    backlog: CachePadded<AtomicU64>,
    /// The stripe's writer lock (the pluggable algorithm under test)
    /// and retirement bags.
    inner: Lock<StripeInner, R>,
}

// SAFETY: `heads` chains are read concurrently through atomic loads and
// mutated only by the lock-serialized writer via atomic stores; the
// nodes they lead to are immutable and kept alive until a `&mut`
// quiescent point (see module docs). `seq` and `inner` are Sync on
// their own.
unsafe impl<R: RawLock> Sync for Stripe<R> {}
// SAFETY: as above — ownership of the chain nodes moves with the
// stripe, and nothing in a node is thread-affine (`Bytes` is
// `Send + Sync`).
unsafe impl<R: RawLock> Send for Stripe<R> {}

/// RAII seqlock write section: entering makes the stripe's version word
/// odd, dropping makes it even again. Must only be created while
/// holding the stripe lock (single writer), and must enclose every
/// chain-pointer store of the mutation.
struct WriteSection<'a> {
    // chk: a borrow of the stripe's already-CachePadded seqlock word,
    // not storage of its own.
    seq: &'a AtomicU64,
}

impl<'a> WriteSection<'a> {
    fn enter(seq: &'a AtomicU64) -> Self {
        // Relaxed is enough: the Release pointer store that publishes
        // the mutation is sequenced after this store, so any reader
        // that Acquire-observes the mutation also observes the odd
        // word (or a later value) on its validation load.
        let s = seq.load(Ordering::Relaxed);
        debug_assert_eq!(s & 1, 0, "nested write sections");
        seq.store(s + 1, Ordering::Relaxed);
        WriteSection { seq }
    }
}

impl Drop for WriteSection<'_> {
    fn drop(&mut self) {
        let s = self.seq.load(Ordering::Relaxed);
        // Release: the closing store must not be reordered before the
        // mutation's pointer stores, or a reader could validate against
        // the new even value while the mutation is still in flight.
        self.seq.store(s + 1, Ordering::Release);
    }
}

/// The store, generic over the lock algorithm guarding both the stripes
/// and the global maintenance path.
pub struct KvStore<R: RawLock + Default> {
    /// Striped buckets: `stripes[i]` owns buckets `b` with
    /// `b % stripes.len() == i`.
    stripes: Box<[Stripe<R>]>,
    buckets_per_stripe: usize,
    /// The global "stop-the-world" maintenance lock.
    global: Lock<(), R>,
    /// Bumped by every write from every client of the shard; padded so
    /// the two global counters don't false-share with each other or the
    /// neighboring fields.
    write_counter: CachePadded<AtomicU64>,
    next_version: CachePadded<AtomicU64>,
    read_path: ReadPath,
    /// This store's reclamation domain. Per-store (not process-global):
    /// a pinned reader of one store must not stall another store's
    /// collection. Shared as an `Arc` because reader threads register
    /// with it through thread-local participant records.
    epoch: Arc<EpochDomain>,
    reclaim: ReclaimMode,
    stats: Stats,
}

impl<R: RawLock + Default> KvStore<R> {
    /// Creates a store with `buckets` buckets striped over `stripes`
    /// locks, reading through the default [`ReadPath::Optimistic`]
    /// fast path.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` or `stripes` is zero, or if `stripes` exceeds
    /// `buckets`.
    pub fn new(buckets: usize, stripes: usize) -> Self {
        Self::with_read_path(buckets, stripes, ReadPath::default())
    }

    /// Creates a store with an explicit read protocol —
    /// [`ReadPath::Locked`] reproduces the original every-read-locks
    /// Memcached model (the benchmark baseline).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` or `stripes` is zero, or if `stripes` exceeds
    /// `buckets`.
    pub fn with_read_path(buckets: usize, stripes: usize, read_path: ReadPath) -> Self {
        Self::with_reclaim(buckets, stripes, read_path, ReclaimMode::default())
    }

    /// Creates a store with explicit read and reclamation protocols.
    /// [`ReclaimMode::Deferred`] restores the PR-5 graveyard semantics
    /// (nothing freed until [`KvStore::purge_retired`]); it exists as
    /// the churn benchmark's unbounded baseline.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` or `stripes` is zero, or if `stripes` exceeds
    /// `buckets`.
    pub fn with_reclaim(
        buckets: usize,
        stripes: usize,
        read_path: ReadPath,
        reclaim: ReclaimMode,
    ) -> Self {
        assert!(buckets > 0 && stripes > 0 && stripes <= buckets);
        let buckets_per_stripe = buckets.div_ceil(stripes);
        Self {
            stripes: (0..stripes)
                .map(|_| Stripe {
                    seq: CachePadded::new(AtomicU64::new(0)),
                    heads: (0..buckets_per_stripe)
                        .map(|_| AtomicPtr::new(ptr::null_mut()))
                        .collect(),
                    backlog: CachePadded::new(AtomicU64::new(0)),
                    inner: Lock::new(StripeInner {
                        bags: EpochBags::new(),
                    }),
                })
                .collect(),
            buckets_per_stripe,
            global: Lock::new(()),
            write_counter: CachePadded::new(AtomicU64::new(0)),
            next_version: CachePadded::new(AtomicU64::new(1)),
            read_path,
            epoch: Arc::new(EpochDomain::new()),
            reclaim,
            stats: Stats::default(),
        }
    }

    /// The read protocol this store was built with.
    pub fn read_path(&self) -> ReadPath {
        self.read_path
    }

    /// The store's epoch domain. Service loops use this to pin around
    /// compound read sequences or to hold a registration open; plain
    /// `get`/`multi_get` callers never need it — the read path pins by
    /// itself.
    pub fn epoch_domain(&self) -> &Arc<EpochDomain> {
        &self.epoch
    }

    /// The reclamation mode this store was built with.
    pub fn reclaim_mode(&self) -> ReclaimMode {
        self.reclaim
    }

    /// Statistics counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// A plain-value copy of every [`Stats`] counter plus the live
    /// `reclaim_backlog` gauge — the form the service layers scrape.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reclaim_backlog: self.reclaim_backlog(),
            ..self.stats.snapshot()
        }
    }

    fn locate(&self, key: &[u8]) -> (usize, usize) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        let bucket = (h >> 16) as usize % (self.stripes.len() * self.buckets_per_stripe);
        (bucket % self.stripes.len(), bucket / self.stripes.len())
    }

    /// Walks one bucket chain for `key`, cloning out `(version, value)`
    /// on a hit. Safe to call either under the stripe lock (which
    /// excludes the retire path entirely) or optimistically under an
    /// epoch pin: every pointer loaded here was published by a Release
    /// store and leads to a node that is live or retired — and a
    /// retired node's bag cannot age past the grace period while the
    /// reader's pin holds the epoch, so the dereference is always
    /// valid. Chains are acyclic at all times (a pointer store always
    /// targets the writer's *current* live successor, and nodes are
    /// never reused while reachable), so the walk terminates.
    fn chain_find(head: &AtomicPtr<Node>, key: &[u8]) -> Option<(u64, Bytes)> {
        let mut p = head.load(Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: see above — `p` came from a Release-published
            // link and its node is kept allocated and immutable (bar
            // `next`) by the caller's pin or stripe lock.
            let node = unsafe { &*p };
            if node.key.as_ref() == key {
                return Some((node.version, node.value.clone()));
            }
            p = node.next.load(Ordering::Acquire);
        }
        None
    }

    /// One `(version, value)` lookup through the configured read path.
    /// Optimistic protocol: snapshot the stripe's version word (must be
    /// even), traverse without the lock, and accept the result only if
    /// the word is unchanged — then the whole read overlapped no write
    /// section and is a consistent point-in-time answer. A node is
    /// never torn regardless (nodes are immutable and published by
    /// single pointer stores); validation is what makes the *absence*
    /// of a key and the freshness of the hit trustworthy. After
    /// [`OPTIMISTIC_ATTEMPTS`] misses the read queues on the stripe
    /// lock like any writer.
    fn read(&self, key: &[u8]) -> Option<(u64, Bytes)> {
        let (stripe, bucket) = self.locate(key);
        let stripe = &self.stripes[stripe];
        if matches!(self.read_path, ReadPath::Optimistic) {
            // Pin before the first head load: every pointer the
            // traversal below can observe stays allocated until the
            // guard drops (a node's bag cannot age out of the grace
            // period while this pin holds the epoch). A nested pin —
            // `multi_get` reads under one thread — is a plain
            // depth bump. `None` means every participant slot is
            // taken; the locked path below needs no grace period, so
            // the read still answers (counted as a fallback).
            if let Some(_pin) = self.epoch.pin() {
                for _ in 0..OPTIMISTIC_ATTEMPTS {
                    let s1 = stripe.seq.load(Ordering::Acquire);
                    if s1 & 1 == 1 {
                        // A writer is inside; re-snapshot.
                        crate::sync::cpu_relax();
                        continue;
                    }
                    let hit = Self::chain_find(&stripe.heads[bucket], key);
                    // The traversal's Acquire loads keep this validation
                    // load from moving before them; equality means no
                    // write section overlapped the reads we performed.
                    if stripe.seq.load(Ordering::Acquire) == s1 {
                        return hit;
                    }
                }
            }
            self.stats.read_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        let _guard = stripe.inner.lock();
        Self::chain_find(&stripe.heads[bucket], key)
    }

    /// Looks a key up.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let hit = self.read(key).map(|(_, value)| value);
        match &hit {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// The CAS version of a key, if present.
    pub fn version(&self, key: &[u8]) -> Option<u64> {
        self.read(key).map(|(version, _)| version)
    }

    /// Looks a key up, returning `(version, value)` — Memcached's
    /// `gets` command, which the service layer needs to answer a read
    /// and arm a follow-up CAS with one acquisition.
    pub fn get_with_version(&self, key: &[u8]) -> Option<(u64, Bytes)> {
        let hit = self.read(key);
        match &hit {
            Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Batched lookup: each key goes through the configured read path
    /// (per-key validation — a multi-get is not one atomic snapshot,
    /// matching the service's per-key reply semantics). Results come
    /// back in input order; hit/miss statistics count per key.
    pub fn multi_get(&self, keys: &[&[u8]]) -> Vec<Option<(u64, Bytes)>> {
        keys.iter()
            .map(|key| {
                let hit = self.read(key);
                match &hit {
                    Some(_) => self.stats.hits.fetch_add(1, Ordering::Relaxed),
                    None => self.stats.misses.fetch_add(1, Ordering::Relaxed),
                };
                hit
            })
            .collect()
    }

    /// Writer-side search, only under the stripe lock: the link slot
    /// whose load equals the key's node (or, for an absent key, the
    /// terminal null link to append through).
    fn find_link<'a>(head: &'a AtomicPtr<Node>, key: &[u8]) -> (&'a AtomicPtr<Node>, *mut Node) {
        let mut link = head;
        loop {
            // chk: the stripe lock's acquire synchronized us with
            // every previous writer's stores.
            let p = link.load(Ordering::Relaxed);
            if p.is_null() {
                return (link, p);
            }
            // SAFETY: `p` is live (the held stripe lock excludes
            // unlink/retire). The returned `&node.next` borrows the
            // node allocation and stays valid for `'a`: a stripe's
            // nodes are freed only under its lock (epoch collection)
            // or through `&mut KvStore` (purge/drop).
            let node = unsafe { &*p };
            if node.key.as_ref() == key {
                return (link, p);
            }
            link = &node.next;
        }
    }

    /// Allocates a published-ready node.
    fn new_node(key: Bytes, value: Bytes, version: u64, next: *mut Node) -> *mut Node {
        Box::into_raw(Box::new(Node {
            key,
            value,
            version,
            next: AtomicPtr::new(next),
        }))
    }

    /// Hands one just-unlinked node to the epoch machinery. Caller must
    /// hold the stripe lock and must already have published the unlink
    /// (a Release pointer store inside a seqlock write section).
    ///
    /// The ordering here carries the reclamation proof: the backlog
    /// bump is a `SeqCst` RMW sequenced *after* the unlink store, and
    /// the epoch tag is read with a `SeqCst` load
    /// ([`EpochDomain::epoch_sc`]) so the bump precedes the tag read
    /// in the `SeqCst` total order — an Acquire tag load could be
    /// satisfied on RCpc hardware before the unlink is globally
    /// visible. By the time the tag is read the unlink is therefore
    /// committed to memory: a reader that finds this node through a
    /// stale pointer must have pinned at or before the tag, and its
    /// pin then blocks the tag's bag from aging out. Retiring
    /// into a bag slot whose previous generation is three epochs old
    /// frees that generation inline, which is what makes reclamation
    /// amortized per-op rather than a stop-the-world pass.
    fn retire(&self, stripe: &Stripe<R>, inner: &mut StripeInner, node: *mut Node) {
        stripe.backlog.fetch_add(1, Ordering::SeqCst);
        let tag = match self.reclaim {
            ReclaimMode::Epoch => self.epoch.epoch_sc(),
            // Deferred: the epoch never advances, so every node lands
            // in the tag-0 bag and waits for `purge_retired` — the
            // PR-5 graveyard, reproduced for the churn baseline.
            ReclaimMode::Deferred => 0,
        };
        let freed = inner.bags.retire(node, tag, |p| {
            // SAFETY: `p` was unlinked from this stripe's chains at
            // least two epoch advances before `tag`, so every reader
            // that could still reach it has unpinned (grace-period
            // proof in `ssync_core::epoch`), and bag entries are
            // pushed exactly once.
            drop(unsafe { Box::from_raw(p) });
        });
        if freed > 0 {
            stripe.backlog.fetch_sub(freed as u64, Ordering::Relaxed);
            self.stats
                .nodes_reclaimed
                .fetch_add(freed as u64, Ordering::Relaxed);
        }
    }

    /// Frees every bag generation of `stripe` that has aged past the
    /// grace period. Caller must hold the stripe lock.
    fn collect_locked(&self, stripe: &Stripe<R>, inner: &mut StripeInner) -> usize {
        let global = self.epoch.epoch();
        let freed = inner.bags.collect(global, |p| {
            // SAFETY: the bag's tag is at least two advances behind
            // `global`, so no reader pin can still cover `p`; entries
            // are pushed exactly once (see `retire`).
            drop(unsafe { Box::from_raw(p) });
        });
        if freed > 0 {
            stripe.backlog.fetch_sub(freed as u64, Ordering::Relaxed);
            self.stats
                .nodes_reclaimed
                .fetch_add(freed as u64, Ordering::Relaxed);
        }
        freed
    }

    /// The delicate heart of every in-place update, kept in one place:
    /// allocates a replacement for `old` carrying `value`/`version`,
    /// publishes it through `link` inside a seqlock write section, and
    /// retires `old`. Caller must hold the stripe lock, `link` must
    /// currently load `old`, and `old` must be live.
    fn replace_node(
        &self,
        stripe: &Stripe<R>,
        inner: &mut StripeInner,
        link: &AtomicPtr<Node>,
        old: *mut Node,
        value: Bytes,
        version: u64,
    ) {
        // SAFETY: `old` is live under the stripe lock (caller
        // contract).
        let old_node = unsafe { &*old };
        let fresh = Self::new_node(
            old_node.key.clone(),
            value,
            version,
            // chk: lock-serialized — no writer mutates `next` under us.
            old_node.next.load(Ordering::Relaxed),
        );
        {
            let _section = WriteSection::enter(&stripe.seq);
            link.store(fresh, Ordering::Release);
        }
        self.retire(stripe, inner, old);
    }

    /// Stores a value (insert or replace); returns its new CAS version.
    pub fn set(&self, key: &[u8], value: impl Into<Bytes>) -> u64 {
        let value = value.into();
        let (stripe, bucket) = self.locate(key);
        let stripe = &self.stripes[stripe];
        let version;
        {
            let mut inner = stripe.inner.lock();
            // Assigned *under* the stripe lock: a key's versions must be
            // monotone in replacement order (two racing writers must not
            // leave the chain holding the smaller version), or the
            // replication log's per-key version gate would drop the
            // surviving value on replay.
            version = self.next_version.fetch_add(1, Ordering::Relaxed);
            let (link, found) = Self::find_link(&stripe.heads[bucket], key);
            if found.is_null() {
                let node = Self::new_node(Bytes::copy_from_slice(key), value, version, found);
                let _section = WriteSection::enter(&stripe.seq);
                link.store(node, Ordering::Release);
            } else {
                self.replace_node(stripe, &mut inner, link, found, value, version);
            }
        }
        self.stats.sets.fetch_add(1, Ordering::Relaxed);
        self.after_write();
        version
    }

    /// Compare-and-set: stores only if the current version matches.
    pub fn cas(&self, key: &[u8], value: impl Into<Bytes>, expected: u64) -> Result<u64, u64> {
        let value = value.into();
        let (stripe, bucket) = self.locate(key);
        let stripe = &self.stripes[stripe];
        let result = {
            let mut inner = stripe.inner.lock();
            // Under the stripe lock, as in `set`: replacement order and
            // version order must agree per key.
            let version = self.next_version.fetch_add(1, Ordering::Relaxed);
            let (link, found) = Self::find_link(&stripe.heads[bucket], key);
            if found.is_null() {
                Err(0)
            } else {
                // SAFETY: `found` is live under the stripe lock.
                let current = unsafe { &*found }.version;
                if current == expected {
                    self.replace_node(stripe, &mut inner, link, found, value, version);
                    Ok(version)
                } else {
                    Err(current)
                }
            }
        };
        if result.is_ok() {
            self.stats.sets.fetch_add(1, Ordering::Relaxed);
            self.after_write();
        } else {
            self.stats.cas_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Unlinks `key`'s node if present (under the stripe lock),
    /// retiring it. With `versioned`, the removal is assigned a fresh
    /// version inside the same critical section — so a tombstone orders
    /// after every earlier replacement of the key, exactly as `set`'s
    /// versions do. `Some(version)` (0 when unversioned) if a node was
    /// removed.
    fn unlink(
        &self,
        stripe: &Stripe<R>,
        bucket: usize,
        key: &[u8],
        versioned: bool,
    ) -> Option<u64> {
        let mut inner = stripe.inner.lock();
        let (link, found) = Self::find_link(&stripe.heads[bucket], key);
        if found.is_null() {
            return None;
        }
        let version = if versioned {
            self.next_version.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        // SAFETY: `found` is live under the stripe lock.
        // chk: lock-serialized load, as in `find_link`.
        let next = unsafe { &*found }.next.load(Ordering::Relaxed);
        {
            let _section = WriteSection::enter(&stripe.seq);
            link.store(next, Ordering::Release);
        }
        self.retire(stripe, &mut inner, found);
        Some(version)
    }

    /// Deletes a key, assigning the removal a fresh version — the
    /// tombstone version a replicated delete streams to backups so the
    /// remove orders against concurrent stores. `Some(version)` if the
    /// key existed (a delete of an absent key consumes no version).
    pub fn delete_versioned(&self, key: &[u8]) -> Option<u64> {
        let (stripe, bucket) = self.locate(key);
        let version = self.unlink(&self.stripes[stripe], bucket, key, true)?;
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        self.after_write();
        Some(version)
    }

    /// Deletes a key; true if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let (stripe, bucket) = self.locate(key);
        let removed = self
            .unlink(&self.stripes[stripe], bucket, key, false)
            .is_some();
        if removed {
            self.stats.deletes.fetch_add(1, Ordering::Relaxed);
            self.after_write();
        }
        removed
    }

    /// Applies one replicated operation idempotently: a put
    /// (`value: Some`) or a delete tombstone (`value: None`) tagged with
    /// the version the *primary* assigned. The write lands only if the
    /// key's current version is older than `version`; duplicate or
    /// out-of-date deliveries are dropped (and counted as
    /// `repl_stale_drops`), so a replica can replay a log over a live
    /// stream without corruption. Returns true if the store changed.
    ///
    /// The per-key gate alone cannot block a *resurrection* (an old put
    /// arriving after the key's tombstone was applied — the tombstone
    /// leaves nothing behind to compare against), so the replication
    /// layer must also gate on its stream high-water mark; this method
    /// is the second, per-key line of defense.
    ///
    /// The version counter is bumped past `version`, so a replica
    /// promoted to primary keeps assigning monotone versions.
    pub fn apply_replicated(&self, key: &[u8], version: u64, value: Option<&[u8]>) -> bool {
        self.next_version.fetch_max(version + 1, Ordering::Relaxed);
        let (stripe, bucket) = self.locate(key);
        let stripe = &self.stripes[stripe];
        let applied = {
            let mut inner = stripe.inner.lock();
            let (link, found) = Self::find_link(&stripe.heads[bucket], key);
            // SAFETY: `found` (when non-null) is live under the stripe
            // lock.
            let current = (!found.is_null()).then(|| unsafe { &*found });
            match (current, value) {
                (Some(node), _) if node.version >= version => false,
                (Some(_), Some(v)) => {
                    self.replace_node(
                        stripe,
                        &mut inner,
                        link,
                        found,
                        Bytes::copy_from_slice(v),
                        version,
                    );
                    true
                }
                (Some(node), None) => {
                    // chk: lock-serialized load, as in `find_link`.
                    let next = node.next.load(Ordering::Relaxed);
                    {
                        let _section = WriteSection::enter(&stripe.seq);
                        link.store(next, Ordering::Release);
                    }
                    self.retire(stripe, &mut inner, found);
                    true
                }
                (None, Some(v)) => {
                    let fresh = Self::new_node(
                        Bytes::copy_from_slice(key),
                        Bytes::copy_from_slice(v),
                        version,
                        ptr::null_mut(),
                    );
                    let _section = WriteSection::enter(&stripe.seq);
                    link.store(fresh, Ordering::Release);
                    true
                }
                // Delete of an absent key: already gone, nothing to do.
                (None, None) => false,
            }
        };
        if applied {
            self.stats.repl_applied.fetch_add(1, Ordering::Relaxed);
            self.after_write();
        } else {
            self.stats.repl_stale_drops.fetch_add(1, Ordering::Relaxed);
        }
        applied
    }

    /// Visits every stored item as `(key, version, value)`, one stripe
    /// lock at a time, in unspecified order.
    pub fn for_each(&self, mut f: impl FnMut(&[u8], u64, &[u8])) {
        for stripe in self.stripes.iter() {
            let _guard = stripe.inner.lock();
            for head in stripe.heads.iter() {
                let mut p = head.load(Ordering::Acquire);
                while !p.is_null() {
                    // SAFETY: live node, stripe lock held.
                    let node = unsafe { &*p };
                    f(node.key.as_ref(), node.version, node.value.as_ref());
                    p = node.next.load(Ordering::Acquire);
                }
            }
        }
    }

    /// The full contents as `(key, version, value)` triples sorted by
    /// key — the comparison form replication tests and the `repl-perf`
    /// convergence check use. Clones are `Bytes` refcount bumps, not
    /// byte copies, so dumping a large store is cheap.
    pub fn dump(&self) -> Vec<(Bytes, u64, Bytes)> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let _guard = stripe.inner.lock();
            for head in stripe.heads.iter() {
                let mut p = head.load(Ordering::Acquire);
                while !p.is_null() {
                    // SAFETY: live node, stripe lock held.
                    let node = unsafe { &*p };
                    out.push((node.key.clone(), node.version, node.value.clone()));
                    p = node.next.load(Ordering::Acquire);
                }
            }
        }
        out.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        out
    }

    /// A chunked cursor over the sorted contents: the `max` smallest
    /// `(key, version, value)` triples whose key is strictly greater
    /// than `after` (`None` starts from the beginning). Re-passing the
    /// last returned key walks the whole store in sorted chunks — an
    /// empty chunk means the cursor is exhausted — without ever
    /// materializing more than ~`2 * max` candidates, which is what
    /// lets a migration bulk-copy stream a large shard in bounded
    /// memory. Stripe locking as in [`KvStore::dump`]: each stripe is
    /// consistent, the whole chunk is not a point-in-time snapshot; a
    /// racing writer may straddle the chunk boundary, which migration
    /// absorbs by replaying the op-log delta after the copy.
    pub fn dump_range(&self, after: Option<&[u8]>, max: usize) -> Vec<(Bytes, u64, Bytes)> {
        let mut out: Vec<(Bytes, u64, Bytes)> = Vec::new();
        for stripe in self.stripes.iter() {
            let _guard = stripe.inner.lock();
            for head in stripe.heads.iter() {
                let mut p = head.load(Ordering::Acquire);
                while !p.is_null() {
                    // SAFETY: live node, stripe lock held.
                    let node = unsafe { &*p };
                    if after.map_or(true, |a| node.key.as_ref() > a) {
                        out.push((node.key.clone(), node.version, node.value.clone()));
                    }
                    p = node.next.load(Ordering::Acquire);
                }
            }
            // Keep the candidate set bounded: once it doubles the
            // chunk size, only the `max` smallest keys can still make
            // the final cut.
            if out.len() > max.saturating_mul(2) {
                out.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
                out.truncate(max);
            }
        }
        out.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        out.truncate(max);
        out
    }

    /// Number of stored items (takes every stripe lock).
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.for_each(|_, _, _| n += 1);
        n
    }

    /// True if the store holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shutdown drain: frees every retired node regardless of its
    /// bag's epoch, returning how many were reclaimed. `&mut self` is
    /// the quiescent point: exclusive access proves no optimistic
    /// reader (or any other caller) is traversing a chain, so the
    /// unlinked nodes are unreachable and safe to drop without waiting
    /// out a grace period. Live traffic never needs this —
    /// [`KvStore::reclaim_pass`] and the write path's amortized
    /// collection reclaim concurrently — but drop and the explicit
    /// store-teardown paths still come through here.
    pub fn purge_retired(&mut self) -> usize {
        let mut freed = 0;
        for stripe in self.stripes.iter_mut() {
            // The retirement invariant, checked before anything is
            // freed: a retired node must no longer be reachable from
            // any live chain of its stripe, or the free below would
            // leave a dangling link for the next reader.
            #[cfg(debug_assertions)]
            {
                let mut live = Vec::new();
                for head in stripe.heads.iter() {
                    // chk: `&mut self` — exclusive, unordered loads.
                    let mut p = head.load(Ordering::Relaxed);
                    while !p.is_null() {
                        live.push(p);
                        // chk: unordered, as above — exclusive access.
                        // SAFETY: live node under exclusive access.
                        p = unsafe { &*p }.next.load(Ordering::Relaxed);
                    }
                }
                for p in stripe.inner.get_mut().bags.iter() {
                    assert!(
                        !live.contains(p),
                        "retired node still reachable from a live chain"
                    );
                }
            }
            let n = stripe.inner.get_mut().bags.drain_all(|p| {
                // SAFETY: retired nodes were unlinked from every chain
                // and pushed exactly once; with `&mut self` nothing can
                // reach them anymore.
                drop(unsafe { Box::from_raw(p) });
            });
            stripe.backlog.fetch_sub(n as u64, Ordering::Relaxed);
            self.stats
                .nodes_reclaimed
                .fetch_add(n as u64, Ordering::Relaxed);
            freed += n;
        }
        freed
    }

    /// Retired nodes awaiting reclamation, summed over the stripes.
    /// Lock-free: each stripe keeps a relaxed gauge, so monitoring can
    /// scrape the backlog live — no `&mut`, no queueing behind writers
    /// on any stripe lock.
    pub fn reclaim_backlog(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.backlog.load(Ordering::Relaxed))
            .sum()
    }

    /// One online reclamation pass: attempt a global-epoch advance,
    /// then sweep every stripe's bags for generations past the grace
    /// period. Safe — and designed — to run concurrently with readers
    /// and writers; the serve loops call it periodically so a node
    /// reclaims while traffic is flowing. Returns the nodes freed.
    /// A no-op under [`ReclaimMode::Deferred`].
    pub fn reclaim_pass(&self) -> usize {
        if matches!(self.reclaim, ReclaimMode::Deferred) {
            return 0;
        }
        if self.epoch.try_advance() {
            self.stats.epochs_advanced.fetch_add(1, Ordering::Relaxed);
        }
        let mut freed = 0;
        for stripe in self.stripes.iter() {
            let mut inner = stripe.inner.lock();
            freed += self.collect_locked(stripe, &mut inner);
        }
        freed
    }

    /// The write path's periodic global-lock maintenance (Memcached's
    /// LRU crawl / hash expansion stand-in: walks one stripe under the
    /// global lock).
    fn after_write(&self) {
        let n = self.write_counter.fetch_add(1, Ordering::Relaxed) + 1;
        if n % MAINTENANCE_PERIOD != 0 {
            return;
        }
        let _global = self.global.lock();
        self.stats.maintenance_runs.fetch_add(1, Ordering::Relaxed);
        // Touch one stripe while holding the global lock, as the real
        // rebalancer serializes against every writer.
        let stripe = (n / MAINTENANCE_PERIOD) as usize % self.stripes.len();
        let stripe = &self.stripes[stripe];
        let mut inner = stripe.inner.lock();
        let mut items = 0usize;
        for head in stripe.heads.iter() {
            let mut p = head.load(Ordering::Acquire);
            while !p.is_null() {
                // SAFETY: live node, stripe lock held.
                p = unsafe { &*p }.next.load(Ordering::Acquire);
                items += 1;
            }
        }
        let _ = items;
        // Amortized reclamation: the same periodic visit that crawls the
        // stripe also nudges the epoch forward and collects this stripe's
        // expired generations, so a write-heavy store reclaims without
        // anyone ever calling `reclaim_pass` or `purge_retired`.
        if matches!(self.reclaim, ReclaimMode::Epoch) {
            if self.epoch.try_advance() {
                self.stats.epochs_advanced.fetch_add(1, Ordering::Relaxed);
            }
            self.collect_locked(stripe, &mut inner);
        }
    }
}

impl<R: RawLock + Default> Drop for KvStore<R> {
    fn drop(&mut self) {
        self.purge_retired();
        for stripe in self.stripes.iter_mut() {
            for head in stripe.heads.iter() {
                // chk: `&mut self` — drop is single-threaded by
                // definition, so both loads here are unordered.
                let mut p = head.load(Ordering::Relaxed);
                while !p.is_null() {
                    // SAFETY: exclusive access; live chains and the
                    // (already purged) retirement list are disjoint, so
                    // each node is freed exactly once.
                    let node = unsafe { Box::from_raw(p) };
                    // chk: unordered, as above — exclusive access.
                    p = node.next.load(Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::{McsLock, MutexLock, TasLock, TicketLock};

    #[test]
    fn set_get_delete() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        assert!(kv.get(b"a").is_none());
        kv.set(b"a", b"1".as_slice());
        assert_eq!(kv.get(b"a").unwrap().as_ref(), b"1");
        kv.set(b"a", b"2".as_slice());
        assert_eq!(kv.get(b"a").unwrap().as_ref(), b"2");
        assert!(kv.delete(b"a"));
        assert!(!kv.delete(b"a"));
        assert!(kv.is_empty());
    }

    #[test]
    fn cas_respects_versions() {
        let kv: KvStore<TasLock> = KvStore::new(64, 8);
        let v1 = kv.set(b"k", b"x".as_slice());
        assert_eq!(kv.version(b"k"), Some(v1));
        let v2 = kv.cas(b"k", b"y".as_slice(), v1).unwrap();
        assert!(v2 > v1);
        // Stale CAS fails and reports the current version.
        assert_eq!(kv.cas(b"k", b"z".as_slice(), v1), Err(v2));
        // CAS on a missing key fails with version 0.
        assert_eq!(kv.cas(b"nope", b"z".as_slice(), 1), Err(0));
    }

    #[test]
    fn maintenance_runs_periodically() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        for i in 0..(MAINTENANCE_PERIOD * 3) {
            kv.set(format!("k{i}").as_bytes(), b"v".as_slice());
        }
        assert!(kv.stats().maintenance_runs.load(Ordering::Relaxed) >= 3);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let kv: KvStore<MutexLock> = KvStore::new(64, 8);
        kv.set(b"present", b"v".as_slice());
        kv.get(b"present");
        kv.get(b"absent");
        assert_eq!(kv.stats().hits.load(Ordering::Relaxed), 1);
        assert_eq!(kv.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_track_deletes_and_cas_failures() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        let v = kv.set(b"k", b"x".as_slice());
        assert!(kv.delete(b"k"));
        assert!(!kv.delete(b"k")); // Absent: not counted.
        assert!(kv.cas(b"k", b"y".as_slice(), v).is_err()); // Absent key.
        let v = kv.set(b"k", b"x".as_slice());
        assert!(kv.cas(b"k", b"y".as_slice(), v + 1).is_err()); // Stale.
        assert!(kv.cas(b"k", b"y".as_slice(), v).is_ok());
        let snap = kv.stats_snapshot();
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.cas_failures, 2);
        assert_eq!(snap.sets, 3); // Two plain sets + the successful CAS.
    }

    #[test]
    fn snapshot_copies_and_merges() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        kv.set(b"a", b"1".as_slice());
        kv.get(b"a");
        kv.get(b"b");
        let snap = kv.stats_snapshot();
        assert_eq!(
            snap,
            StatsSnapshot {
                hits: 1,
                misses: 1,
                sets: 1,
                ..StatsSnapshot::default()
            }
        );
        let doubled = snap.merge(&snap);
        assert_eq!(doubled.hits, 2);
        assert_eq!(doubled.sets, 2);
    }

    #[test]
    fn get_with_version_matches_get_and_version() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        assert!(kv.get_with_version(b"k").is_none());
        let v = kv.set(b"k", b"val".as_slice());
        let (got_v, got) = kv.get_with_version(b"k").unwrap();
        assert_eq!(got_v, v);
        assert_eq!(got.as_ref(), b"val");
        assert_eq!(kv.version(b"k"), Some(v));
        // It counts toward hit/miss stats like `get`.
        let snap = kv.stats_snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
    }

    #[test]
    fn concurrent_writers_disjoint_keyspaces() {
        let kv: KvStore<McsLock> = KvStore::new(128, 16);
        std::thread::scope(|s| {
            for t in 0..4 {
                let kv = &kv;
                s.spawn(move || {
                    for i in 0..200u32 {
                        let key = format!("t{t}-{i}");
                        kv.set(key.as_bytes(), key.clone().into_bytes());
                        assert_eq!(kv.get(key.as_bytes()).unwrap().as_ref(), key.as_bytes());
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(kv.len(), 800);
    }

    #[test]
    #[should_panic]
    fn more_stripes_than_buckets_rejected() {
        let _ = KvStore::<TicketLock>::new(4, 8);
    }

    #[test]
    fn delete_versioned_assigns_tombstone_versions() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        let v = kv.set(b"k", b"x".as_slice());
        let t = kv.delete_versioned(b"k").expect("key existed");
        assert!(t > v, "tombstone {t} must order after the store {v}");
        assert_eq!(kv.delete_versioned(b"k"), None);
        assert_eq!(kv.stats_snapshot().deletes, 1);
        // A later set still gets a version past the tombstone.
        assert!(kv.set(b"k", b"y".as_slice()) > t);
    }

    #[test]
    fn apply_replicated_is_version_gated_and_idempotent() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        // Fresh put applies.
        assert!(kv.apply_replicated(b"k", 5, Some(b"five")));
        assert_eq!(kv.get_with_version(b"k").unwrap().0, 5);
        // Duplicate delivery and older versions drop.
        assert!(!kv.apply_replicated(b"k", 5, Some(b"five")));
        assert!(!kv.apply_replicated(b"k", 3, Some(b"three")));
        assert_eq!(kv.get_with_version(b"k").unwrap().1.as_ref(), b"five");
        // Newer version replaces.
        assert!(kv.apply_replicated(b"k", 9, Some(b"nine")));
        // Tombstone with a newer version removes; older tombstone drops.
        assert!(!kv.apply_replicated(b"k", 7, None));
        assert!(kv.get(b"k").is_some());
        assert!(kv.apply_replicated(b"k", 12, None));
        assert!(kv.get(b"k").is_none());
        // Tombstone for an absent key is a no-op.
        assert!(!kv.apply_replicated(b"gone", 20, None));
        let snap = kv.stats_snapshot();
        assert_eq!(snap.repl_applied, 3);
        assert_eq!(snap.repl_stale_drops, 4);
        // Local versioning continues past the highest replicated version.
        assert!(kv.set(b"new", b"v".as_slice()) > 20);
    }

    #[test]
    fn dump_reflects_contents_sorted() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        let vb = kv.set(b"b", b"2".as_slice());
        let va = kv.set(b"a", b"1".as_slice());
        let dump = kv.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].0.as_ref(), b"a");
        assert_eq!(dump[0].1, va);
        assert_eq!(dump[1].0.as_ref(), b"b");
        assert_eq!((dump[1].1, dump[1].2.as_ref()), (vb, b"2".as_slice()));
        let mut visited = 0;
        kv.for_each(|_, _, _| visited += 1);
        assert_eq!(visited, 2);
    }

    #[test]
    fn dump_range_pages_through_whole_store() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        for i in 0u64..257 {
            kv.set(&i.to_be_bytes(), i.to_le_bytes().as_slice());
        }
        // Chunked cursor walk reassembles exactly dump(), for chunk
        // sizes that divide the count, don't, and exceed it.
        for chunk in [1usize, 7, 64, 300] {
            let mut paged = Vec::new();
            let mut cursor: Option<Bytes> = None;
            loop {
                let page = kv.dump_range(cursor.as_deref(), chunk);
                assert!(page.len() <= chunk);
                if page.is_empty() {
                    break;
                }
                cursor = Some(page.last().unwrap().0.clone());
                paged.extend(page);
            }
            assert_eq!(paged, kv.dump(), "chunk size {chunk}");
        }
        // The cursor bound is strict: resuming from a key skips it.
        let first = kv.dump_range(None, 3);
        let next = kv.dump_range(Some(first[1].0.as_ref()), 3);
        assert_eq!(next[0].0, first[2].0);
        // Past the last key the cursor is exhausted.
        assert!(kv
            .dump_range(Some(256u64.to_be_bytes().as_slice()), 8)
            .is_empty());
    }

    #[test]
    fn replicated_stream_converges_with_primary() {
        // A primary and a replica fed only via apply_replicated end up
        // byte-identical, including after a mid-stream replay.
        let primary: KvStore<TicketLock> = KvStore::new(64, 8);
        let replica: KvStore<TicketLock> = KvStore::new(64, 8);
        let mut stream: Vec<(Vec<u8>, u64, Option<Vec<u8>>)> = Vec::new();
        for i in 0u64..40 {
            let key = format!("k{}", i % 7).into_bytes();
            if i % 5 == 4 {
                if let Some(v) = primary.delete_versioned(&key) {
                    stream.push((key, v, None));
                }
            } else {
                let value = i.to_be_bytes().to_vec();
                let v = primary.set(&key, value.clone());
                stream.push((key, v, Some(value)));
            }
        }
        for (key, v, value) in &stream {
            replica.apply_replicated(key, *v, value.as_deref());
        }
        // Replay the stream for keys still present: every entry drops
        // as stale. (Keys whose tombstone applied are skipped — with
        // nothing left to version-gate against, an old put would
        // resurrect them; blocking that is the stream-order gate's job
        // in the replication layer, not the store's.)
        for (key, v, value) in &stream {
            if replica.get(key).is_some() {
                assert!(!replica.apply_replicated(key, *v, value.as_deref()));
            }
        }
        assert_eq!(primary.dump(), replica.dump());
    }

    #[test]
    fn locked_and_optimistic_paths_agree() {
        let fast: KvStore<TicketLock> = KvStore::new(64, 8);
        let slow: KvStore<TicketLock> = KvStore::with_read_path(64, 8, ReadPath::Locked);
        assert_eq!(fast.read_path(), ReadPath::Optimistic);
        assert_eq!(slow.read_path(), ReadPath::Locked);
        for i in 0u64..64 {
            let key = format!("k{}", i % 13);
            match i % 4 {
                0 | 1 => {
                    fast.set(key.as_bytes(), i.to_be_bytes().to_vec());
                    slow.set(key.as_bytes(), i.to_be_bytes().to_vec());
                }
                2 => {
                    fast.delete(key.as_bytes());
                    slow.delete(key.as_bytes());
                }
                _ => {}
            }
            let a = fast.get(key.as_bytes());
            let b = slow.get(key.as_bytes());
            assert_eq!(a, b, "paths disagree on {key}");
        }
        // Versions are assigned identically (same op order), so even
        // the full dumps match.
        assert_eq!(fast.dump(), slow.dump());
        // The locked path never falls back (it never tries).
        assert_eq!(slow.stats_snapshot().read_fallbacks, 0);
    }

    /// The locked fallback engages deterministically when the stripe's
    /// version word says a writer is inside: force the word odd (the
    /// state a preempted writer leaves mid-section) and read through
    /// the public API.
    #[test]
    fn read_falls_back_when_writer_word_is_odd() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        kv.set(b"k", b"v".as_slice());
        let (stripe, _) = kv.locate(b"k");
        // Simulate a writer stuck inside its section: odd word, lock
        // free (the reader must grab the lock and still answer).
        kv.stripes[stripe].seq.store(1, Ordering::Release);
        assert_eq!(kv.get(b"k").unwrap().as_ref(), b"v");
        assert_eq!(kv.stats_snapshot().read_fallbacks, 1);
        // Restore stability: even word again, reads go optimistic.
        kv.stripes[stripe].seq.store(2, Ordering::Release);
        assert_eq!(kv.get(b"k").unwrap().as_ref(), b"v");
        assert_eq!(kv.stats_snapshot().read_fallbacks, 1);
    }

    #[test]
    fn multi_get_returns_input_order_and_counts_stats() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        let va = kv.set(b"a", b"1".as_slice());
        let vb = kv.set(b"b", b"2".as_slice());
        let keys: [&[u8]; 3] = [b"b", b"missing", b"a"];
        let hits = kv.multi_get(&keys);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].as_ref().unwrap().0, vb);
        assert!(hits[1].is_none());
        assert_eq!(hits[2].as_ref().unwrap().0, va);
        let snap = kv.stats_snapshot();
        assert_eq!((snap.hits, snap.misses), (2, 1));
    }

    #[test]
    fn retired_nodes_accumulate_and_purge() {
        let mut kv: KvStore<TicketLock> = KvStore::new(64, 8);
        for i in 0u64..10 {
            kv.set(b"k", i.to_be_bytes().to_vec()); // 9 replacements.
        }
        kv.delete(b"k"); // +1 unlink.
        assert_eq!(kv.reclaim_backlog(), 10);
        assert_eq!(kv.purge_retired(), 10);
        assert_eq!(kv.reclaim_backlog(), 0);
        assert_eq!(kv.purge_retired(), 0);
        // The store still works after a purge.
        kv.set(b"k", b"fresh".as_slice());
        assert_eq!(kv.get(b"k").unwrap().as_ref(), b"fresh");
    }

    /// `reclaim_pass` frees retired nodes online — through `&self`,
    /// while the store is fully shared — once enough passes have run
    /// to carry the global epoch past the retirees' grace period.
    #[test]
    fn reclaim_pass_frees_concurrently_reachable_garbage() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        for i in 0u64..10 {
            kv.set(b"k", i.to_be_bytes().to_vec()); // 9 replacements.
        }
        kv.delete(b"k"); // +1 unlink.
        assert_eq!(kv.reclaim_backlog(), 10);
        // Each pass advances the epoch by at most one; after the grace
        // period (two advances past the retirement tag) everything
        // retired above is reclaimable. Three passes are enough.
        let mut freed = 0;
        for _ in 0..3 {
            freed += kv.reclaim_pass();
        }
        assert_eq!(freed, 10);
        assert_eq!(kv.reclaim_backlog(), 0);
        let snap = kv.stats_snapshot();
        assert_eq!(snap.nodes_reclaimed, 10);
        assert!(snap.epochs_advanced >= 2);
        assert_eq!(snap.reclaim_backlog, 0);
        // The store still works after online reclamation.
        kv.set(b"k", b"fresh".as_slice());
        assert_eq!(kv.get(b"k").unwrap().as_ref(), b"fresh");
    }

    /// `ReclaimMode::Deferred` reproduces the PR-5 graveyard: nothing
    /// is freed while the store is shared, `reclaim_pass` is a no-op,
    /// and only the `&mut` purge drains the backlog.
    #[test]
    fn deferred_mode_never_reclaims_online() {
        let mut kv: KvStore<TicketLock> =
            KvStore::with_reclaim(64, 8, ReadPath::Optimistic, ReclaimMode::Deferred);
        assert_eq!(kv.reclaim_mode(), ReclaimMode::Deferred);
        for i in 0u64..10 {
            kv.set(b"k", i.to_be_bytes().to_vec());
        }
        kv.delete(b"k");
        assert_eq!(kv.reclaim_pass(), 0);
        assert_eq!(kv.reclaim_backlog(), 10);
        assert_eq!(kv.stats_snapshot().epochs_advanced, 0);
        assert_eq!(kv.purge_retired(), 10);
        assert_eq!(kv.reclaim_backlog(), 0);
    }

    /// A pinned reader holds the epoch: garbage retired while a guard
    /// is live must survive any number of reclaim passes, and become
    /// free only after the guard drops and the epoch can advance again.
    #[test]
    fn pinned_reader_defers_reclamation_until_unpin() {
        let kv: KvStore<TicketLock> = KvStore::new(64, 8);
        kv.set(b"k", b"old".as_slice());
        let pin = kv.epoch.pin().expect("participant slot");
        kv.set(b"k", b"new".as_slice()); // Retires the old node.
        assert_eq!(kv.reclaim_backlog(), 1);
        for _ in 0..4 {
            // The pin blocks the advance, so the grace period can never
            // elapse while the guard is live.
            assert_eq!(kv.reclaim_pass(), 0);
        }
        assert_eq!(kv.reclaim_backlog(), 1);
        drop(pin);
        let mut freed = 0;
        for _ in 0..3 {
            freed += kv.reclaim_pass();
        }
        assert_eq!(freed, 1);
        assert_eq!(kv.reclaim_backlog(), 0);
    }

    /// A reader hammering a key whose value is continuously replaced by
    /// a writer thread must only ever observe fully-formed values (the
    /// value encodes its own content) — the single-pointer publication
    /// makes torn reads structurally impossible, and this exercises the
    /// claim under a real race.
    #[test]
    fn concurrent_reader_never_sees_torn_values() {
        let kv: KvStore<TicketLock> = KvStore::new(16, 4);
        const ROUNDS: u64 = 3_000;
        kv.set(b"hot", 0u64.to_be_bytes().to_vec());
        std::thread::scope(|s| {
            let kv = &kv;
            s.spawn(move || {
                for i in 1..ROUNDS {
                    kv.set(b"hot", i.to_be_bytes().to_vec());
                    if i % 7 == 0 {
                        kv.delete(b"cold"); // Unrelated churn, same store.
                        kv.set(b"cold", i.to_le_bytes().to_vec());
                    }
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            let mut last = 0u64;
            for n in 0..ROUNDS {
                let (version, value) = kv.get_with_version(b"hot").expect("never deleted");
                let decoded = u64::from_be_bytes(value.as_ref().try_into().expect("8 bytes"));
                assert!(decoded < ROUNDS, "torn value {decoded}");
                // The single writer bumps the version with each value;
                // within one reader, versions never run backwards.
                assert!(version >= last, "version regressed {last} -> {version}");
                last = version;
                if n % 64 == 0 {
                    std::thread::yield_now();
                }
            }
        });
    }
}

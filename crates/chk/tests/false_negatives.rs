//! The checker's own false-negative regression suite.
//!
//! Each test plants a known concurrency bug — a protocol one plausible
//! refactor away from the real kv/mp code — and asserts the checker
//! *finds* it, then asserts the corrected protocol passes. If a future
//! scheduler change makes one of these pass silently, the checker has
//! lost the very sensitivity the model suite depends on.

use std::sync::Arc;

use ssync_chk::sync::atomic::{AtomicU64, Ordering};
use ssync_chk::{thread, Builder};

/// A miniature of the kv per-stripe seqlock: one writer updates `a`,`b`
/// (invariant `b == a + 1`) under a sequence word; one optimistic reader
/// validates the word before trusting the pair. `double_bump` selects the
/// real protocol (odd on entry, even on close) or the seeded bug (a
/// single bump on close, so readers cannot detect an in-progress write).
fn seqlock_model(double_bump: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let seq = Arc::new(AtomicU64::new(0));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(1));
        let (seq_w, a_w, b_w) = (Arc::clone(&seq), Arc::clone(&a), Arc::clone(&b));
        let writer = thread::spawn(move || {
            let s = seq_w.load(Ordering::Relaxed);
            if double_bump {
                seq_w.store(s + 1, Ordering::Relaxed); // odd: writer in
                a_w.store(10, Ordering::Release);
                b_w.store(11, Ordering::Release);
                seq_w.store(s + 2, Ordering::Release); // even: writer out
            } else {
                // BUG: no odd phase — the write is invisible until the
                // single closing bump, so a reader's two sequence loads
                // can both see the old value around a torn pair.
                a_w.store(10, Ordering::Release);
                b_w.store(11, Ordering::Release);
                seq_w.store(s + 1, Ordering::Release);
            }
        });
        for _attempt in 0..2 {
            let s1 = seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                thread::yield_now();
                continue;
            }
            let ra = a.load(Ordering::Acquire);
            let rb = b.load(Ordering::Acquire);
            if seq.load(Ordering::Acquire) == s1 {
                assert_eq!(rb, ra + 1, "torn read passed seqlock validation");
                break;
            }
        }
        writer.join();
    }
}

#[test]
fn buggy_seqlock_single_bump_is_caught() {
    let v = Builder::new().expect_violation(seqlock_model(false));
    assert!(v.message.contains("torn read"), "{v}");
}

#[test]
fn correct_seqlock_double_bump_passes() {
    let report = Builder::new().check(seqlock_model(true));
    assert!(!report.truncated, "{report:?}");
}

#[test]
fn correct_seqlock_double_bump_passes_under_weak_memory() {
    // The odd store is Relaxed in the real protocol; it is still ordered
    // before the Release data stores (a Release flushes nothing past
    // what precedes it), so weak memory does not break validation.
    let report = Builder::new()
        .with_weak_memory(true)
        .check(seqlock_model(true));
    assert!(!report.truncated, "{report:?}");
}

/// A miniature of the Lamport SPSC ring's publish edge: producer writes a
/// slot, then publishes by bumping `tail`; consumer checks `tail` against
/// its own `head` before trusting the slot. `release_publish` selects the
/// real protocol or the seeded bug (Relaxed tail store, which weak memory
/// may commit *before* the slot write).
fn ring_publish_model(release_publish: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let slot = Arc::new(AtomicU64::new(0));
        let head = Arc::new(AtomicU64::new(0));
        let tail = Arc::new(AtomicU64::new(0));
        let (slot_p, tail_p) = (Arc::clone(&slot), Arc::clone(&tail));
        let producer = thread::spawn(move || {
            slot_p.store(7, Ordering::Relaxed);
            if release_publish {
                tail_p.store(1, Ordering::Release);
            } else {
                // BUG: nothing orders the slot write before the publish.
                tail_p.store(1, Ordering::Relaxed);
            }
        });
        let h = head.load(Ordering::Relaxed);
        if tail.load(Ordering::Acquire) > h {
            let v = slot.load(Ordering::Relaxed);
            assert_eq!(v, 7, "consumed an unpublished slot");
            head.store(h + 1, Ordering::Release);
        }
        producer.join();
    }
}

#[test]
fn buggy_ring_relaxed_tail_publish_is_caught() {
    let v = Builder::new()
        .with_weak_memory(true)
        .expect_violation(ring_publish_model(false));
    assert!(v.message.contains("unpublished slot"), "{v}");
}

#[test]
fn correct_ring_release_tail_publish_passes() {
    let report = Builder::new()
        .with_weak_memory(true)
        .check(ring_publish_model(true));
    assert!(!report.truncated, "{report:?}");
}

//! Litmus tests for the checker itself: classic shapes that must pass,
//! classic bugs that must be caught, and determinism of both.

use std::sync::Arc;

use ssync_chk::sync::atomic::{AtomicU64, Ordering};
use ssync_chk::sync::ModelMutex;
use ssync_chk::{thread, Builder};

#[test]
fn atomic_increments_never_lose_updates() {
    let report = ssync_chk::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    assert!(!report.truncated);
    assert!(
        report.executions > 1,
        "expected >1 interleaving, got {report:?}"
    );
}

#[test]
fn load_then_store_increment_race_is_found() {
    // The textbook lost update: read-modify-write split into a load and a
    // store. Some interleaving must end with 1 instead of 2.
    let v = Builder::new().expect_violation(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            let x = c2.load(Ordering::SeqCst);
            c2.store(x + 1, Ordering::SeqCst);
        });
        let x = c.load(Ordering::SeqCst);
        c.store(x + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(v.message.contains("lost update"), "{v}");
}

#[test]
fn store_buffering_litmus_is_sc_under_strong_memory() {
    // SB: with sequentially consistent interleavings, at least one thread
    // must observe the other's store.
    let report = ssync_chk::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let r1 = Arc::new(AtomicU64::new(9));
        let r1c = Arc::clone(&r1);
        let t = thread::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            r1c.store(x2.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        x.store(1, Ordering::Relaxed);
        let r0 = y.load(Ordering::Relaxed);
        t.join();
        assert!(
            r0 == 1 || r1.load(Ordering::Relaxed) == 1,
            "both threads read 0: impossible under SC"
        );
    });
    assert!(!report.truncated);
}

#[test]
fn store_buffering_litmus_observed_under_weak_memory() {
    // The same SB shape must FAIL in weak-memory mode: both Relaxed
    // stores may sit in their store buffers past both loads.
    let v = Builder::new().with_weak_memory(true).expect_violation(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let r1 = Arc::new(AtomicU64::new(9));
        let r1c = Arc::clone(&r1);
        let t = thread::spawn(move || {
            y2.store(1, Ordering::Relaxed);
            r1c.store(x2.load(Ordering::Relaxed), Ordering::Relaxed);
        });
        x.store(1, Ordering::Relaxed);
        let r0 = y.load(Ordering::Relaxed);
        t.join();
        assert!(
            r0 == 1 || r1.load(Ordering::Relaxed) == 1,
            "SB relaxation observed"
        );
    });
    assert!(v.message.contains("SB relaxation"), "{v}");
}

#[test]
fn release_publish_is_sound_under_weak_memory() {
    // Message passing: a Release flag store cannot pass the data store
    // that precedes it, so an Acquire reader that sees the flag sees the
    // data. This is the exact shape of the kv seqlock close and the ring
    // tail publish.
    let report = Builder::new().with_weak_memory(true).check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read after publish");
        }
        t.join();
    });
    assert!(!report.truncated);
}

#[test]
fn relaxed_publish_is_caught_under_weak_memory() {
    // Downgrading the flag store to Relaxed lets it overtake the data
    // store — the checker must find the stale read.
    let v = Builder::new().with_weak_memory(true).expect_violation(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read after publish");
        }
        t.join();
    });
    assert!(v.message.contains("stale read"), "{v}");
}

#[test]
fn model_mutex_provides_exclusion() {
    // A split load/store increment is safe when both sides hold the lock.
    let report = ssync_chk::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let m = Arc::new(ModelMutex::new());
        let (c2, m2) = (Arc::clone(&c), Arc::clone(&m));
        let t = thread::spawn(move || {
            let _g = m2.lock();
            let x = c2.load(Ordering::Relaxed);
            c2.store(x + 1, Ordering::Relaxed);
        });
        {
            let _g = m.lock();
            let x = c.load(Ordering::Relaxed);
            c.store(x + 1, Ordering::Relaxed);
        }
        t.join();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    });
    assert!(!report.truncated);
}

#[test]
fn ab_ba_lock_order_deadlock_is_caught() {
    let v = Builder::new().expect_violation(|| {
        let a = Arc::new(ModelMutex::new());
        let b = Arc::new(ModelMutex::new());
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join();
    });
    assert!(v.message.contains("deadlock"), "{v}");
}

#[test]
fn lost_wakeup_shows_up_as_livelock() {
    // A polling loop whose flag is never set: once everyone else is
    // done the poller spins forever — exactly how a dropped
    // notification manifests. The checker reports it via the step
    // limit.
    let v = Builder::new().expect_violation(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            while f2.load(Ordering::Acquire) == 0 {
                thread::yield_now();
            }
        });
        // Forgot to store the flag.
        t.join();
    });
    assert!(v.message.contains("livelock"), "{v}");
}

#[test]
fn delivered_wakeup_terminates() {
    let report = ssync_chk::model(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            while f2.load(Ordering::Acquire) == 0 {
                thread::yield_now();
            }
        });
        flag.store(1, Ordering::Release);
        t.join();
    });
    assert!(!report.truncated);
}

#[test]
fn same_seed_same_report_and_trace() {
    fn racy() -> (
        Result<ssync_chk::Report, ssync_chk::Violation>,
        Result<ssync_chk::Report, ssync_chk::Violation>,
    ) {
        let run = || {
            Builder::new().with_seed(7).try_check(|| {
                let c = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let t = thread::spawn(move || {
                    let x = c2.load(Ordering::SeqCst);
                    c2.store(x + 1, Ordering::SeqCst);
                });
                let x = c.load(Ordering::SeqCst);
                c.store(x + 1, Ordering::SeqCst);
                t.join();
                assert_eq!(c.load(Ordering::SeqCst), 2);
            })
        };
        (run(), run())
    }
    let (a, b) = racy();
    let (a, b) = (a.unwrap_err(), b.unwrap_err());
    assert_eq!(a.execution, b.execution);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn execution_cap_reports_truncation() {
    let report = Builder::new().with_max_executions(1).check(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        c.fetch_add(1, Ordering::Relaxed);
        t.join();
    });
    assert!(report.truncated);
    assert_eq!(report.executions, 1);
}

#[test]
fn three_threads_explore_and_pass() {
    let report = ssync_chk::model(|| {
        let c = Arc::new(AtomicU64::new(0));
        let ts: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::AcqRel);
                })
            })
            .collect();
        c.fetch_add(1, Ordering::AcqRel);
        for t in ts {
            t.join();
        }
        assert_eq!(c.load(Ordering::Acquire), 3);
    });
    assert!(!report.truncated);
    assert!(
        report.executions >= 6,
        "3 RMWs should have ≥ 3! orders, got {report:?}"
    );
}

#[test]
fn shadow_atomics_pass_through_outside_models() {
    let a = AtomicU64::new(5);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 5);
    assert_eq!(a.load(Ordering::SeqCst), 7);
    assert_eq!(
        a.compare_exchange(7, 9, Ordering::SeqCst, Ordering::Relaxed),
        Ok(7)
    );
    let m = ModelMutex::new();
    drop(m.lock());
    drop(m.lock());
}

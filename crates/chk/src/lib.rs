//! `ssync-chk` — an exhaustive small-scope interleaving checker for the
//! workspace's lock-free paths, plus the `ssync-lint` ordering-discipline
//! pass (see [`lint`] and the `ssync-lint` binary).
//!
//! This is a vendored, loom-style stateless model checker: model code
//! uses [`sync::atomic`] shadow atomics, [`thread::spawn`], and
//! [`sync::ModelMutex`]; [`model`] (or a configured [`Builder`]) runs the
//! closure under every schedule a DPOR-lite DFS considers relevant, with
//! bounded preemptions and an optional store-buffer weak-memory mode.
//! Any panic inside the model (an `assert!` on an invariant) is reported
//! as a [`Violation`] carrying the exact schedule; deadlocks — including
//! the all-threads-yielding shape of a lost wakeup — are violations too.
//!
//! ```
//! use ssync_chk::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // Two increments never lose an update (fetch_add is atomic).
//! let report = ssync_chk::model(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = ssync_chk::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join();
//!     assert_eq!(c.load(Ordering::Relaxed), 2);
//! });
//! assert!(!report.truncated);
//! ```
//!
//! The production crates (`ssync-core`, `ssync-mp`, `ssync-kv`,
//! `ssync-locks`, `ssync-repl`) compile against these shadow atomics only
//! under `RUSTFLAGS='--cfg ssync_chk'`, through their `sync` facade
//! modules; production builds re-export `core::sync::atomic` and are
//! byte-identical. DESIGN.md ("Concurrency checking") documents the
//! architecture, the pruning rule, and how to write a new model.

mod sched;

pub mod lint;
pub mod sync;
pub mod thread;

use std::sync::{Arc, Mutex, Once};

/// Configuration for one model run. Fields are public for one-off
/// tweaking; the `with_*` methods chain.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Cap on explored executions (schedules). Hitting it sets
    /// [`Report::truncated`] instead of failing, so CI smoke runs can
    /// bound time while full runs prove the scope. Default 10 000.
    pub max_executions: usize,
    /// Cap on scheduler steps within one execution; exceeding it is a
    /// violation (an unbounded loop not going through `yield_now`).
    /// Default 2 000.
    pub max_steps: usize,
    /// Preemption bound: involuntary context switches allowed per
    /// schedule (voluntary blocking — yields, lock waits, joins — is
    /// free). Most real bugs need ≤ 2. Default 3.
    pub preemption_bound: usize,
    /// Model store buffering: non-SeqCst stores commit asynchronously
    /// (Relaxed stores may commit out of order; Release stores keep
    /// everything before them). Default off (sequential consistency).
    pub weak_memory: bool,
    /// Seed rotating DFS candidate order; same seed ⇒ identical run.
    pub seed: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_executions: 10_000,
            max_steps: 2_000,
            preemption_bound: 3,
            weak_memory: false,
            seed: 0x5379_6e63, // "Sync"
        }
    }
}

/// What a completed (violation-free) model run explored — the numbers
/// EXPERIMENTS.md records per model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Executions run, including sleep-set-pruned partial ones.
    pub executions: u64,
    /// Executions cut short because every enabled step was asleep (the
    /// DPOR-lite reduction at work).
    pub pruned: u64,
    /// True if `max_executions` stopped exploration before the schedule
    /// tree was exhausted.
    pub truncated: bool,
    /// Deepest decision stack reached (scheduler steps in the longest
    /// schedule).
    pub max_depth: usize,
}

/// A failed schedule: the model's panic message (or deadlock report) plus
/// the exact step trace that produced it. Re-running the same builder
/// reproduces it — everything is deterministic.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Panic/deadlock message from the failing execution.
    pub message: String,
    /// 1-based index of the failing execution.
    pub execution: u64,
    /// The schedule: one human-readable line per scheduler step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model violation (execution {}): {}",
            self.execution, self.message
        )?;
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:4}  {step}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Model runs are serialized process-wide: `cargo test` may run many
/// `#[test]` models concurrently, but the shadow atomics dispatch on
/// thread-local execution handles, so only the bookkeeping (panic hook)
/// is global — the lock keeps reports deterministic and memory bounded.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

/// Installs (once, forever) a panic hook that silences the internal
/// `ChkAbort` unwind used to tear down aborted executions; everything
/// else forwards to the previously installed hook.
fn install_abort_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !info.payload().is::<sched::ChkAbort>() {
                prev(info);
            }
        }));
    });
}

impl Builder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    pub fn with_max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    pub fn with_preemption_bound(mut self, n: usize) -> Self {
        self.preemption_bound = n;
        self
    }

    pub fn with_weak_memory(mut self, on: bool) -> Self {
        self.weak_memory = on;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explores `f` under every relevant schedule. `Ok` carries the
    /// exploration [`Report`]; `Err` carries the first failing schedule.
    pub fn try_check(&self, f: impl Fn() + Send + Sync + 'static) -> Result<Report, Violation> {
        let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install_abort_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut explorer = sched::Explorer::new(self.seed);
        let mut report = Report::default();
        loop {
            let res = sched::run_execution(&f, &mut explorer, self);
            report.executions += 1;
            if res.pruned {
                report.pruned += 1;
            }
            report.max_depth = explorer.max_depth;
            if let Some((message, trace)) = res.violation {
                return Err(Violation {
                    message,
                    execution: report.executions,
                    trace,
                });
            }
            if !explorer.backtrack() {
                return Ok(report);
            }
            if report.executions >= self.max_executions as u64 {
                report.truncated = true;
                return Ok(report);
            }
        }
    }

    /// Like [`Builder::try_check`], but panics with the formatted
    /// [`Violation`] — the form model `#[test]`s use.
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) -> Report {
        match self.try_check(f) {
            Ok(report) => report,
            Err(v) => panic!("{v}"),
        }
    }

    /// Asserts the model *does* fail — the checker's own false-negative
    /// regression form ("this seeded bug must be caught"). Panics if
    /// exploration completes (or truncates) without a violation.
    pub fn expect_violation(&self, f: impl Fn() + Send + Sync + 'static) -> Violation {
        match self.try_check(f) {
            Err(v) => v,
            Ok(report) => panic!(
                "expected a violation, but {} executions passed ({}truncated)",
                report.executions,
                if report.truncated { "" } else { "not " }
            ),
        }
    }
}

/// Checks `f` with default settings; panics on the first violation.
pub fn model(f: impl Fn() + Send + Sync + 'static) -> Report {
    Builder::new().check(f)
}

//! Shadow atomics: drop-in mirrors of `std::sync::atomic` that route
//! every operation through the model scheduler when an execution is
//! active on the calling thread, and fall straight through to the real
//! atomic otherwise.
//!
//! The production crates never name these types directly — they import
//! `crate::sync::atomic::*` from their own one-page facade module, which
//! re-exports `core::sync::atomic` normally and this module under
//! `--cfg ssync_chk`. Production codegen is therefore byte-identical.
//!
//! Two deliberate deviations from std, both documented here because they
//! are easy to trip over when writing a model:
//!
//! * **State resets every execution.** During a model run the committed
//!   value of an atomic lives in the scheduler, seeded from the real
//!   atomic's value at first touch; the real atomic is *not* written
//!   back. An atomic created outside the model closure therefore resets
//!   to its initial value on every execution (which is what a checker
//!   needs for determinism), and `get_mut`/`into_inner` observe only the
//!   seed — create model state inside the closure and read results out
//!   through shadow loads or `std` side-channels.
//! * **`compare_exchange_weak` never fails spuriously.** The model has
//!   no LL/SC to lose a reservation; weak CAS behaves as strong. A loop
//!   around a weak CAS is still exercised via genuine value mismatches.

use std::sync::Arc;

use crate::sched::{self, Req, ReqKind, RmwKind, StoreClass};

/// Routes one operation through the active execution, if any.
fn route(addr: usize, init: u64, kind: ReqKind) -> Option<u64> {
    let handle = sched::with_current(|sh, tid| (Arc::clone(sh), tid));
    handle.map(|(sh, tid)| sh.perform(tid, Req { addr, init, kind }))
}

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::{route, ReqKind, RmwKind, StoreClass};

    fn load_ordering(order: Ordering) {
        match order {
            Ordering::Release => panic!("there is no such thing as a release load"),
            Ordering::AcqRel => panic!("there is no such thing as an acquire-release load"),
            _ => {}
        }
    }

    fn store_class(order: Ordering) -> StoreClass {
        match order {
            Ordering::Relaxed => StoreClass::Relaxed,
            Ordering::Release => StoreClass::Release,
            Ordering::Acquire => panic!("there is no such thing as an acquire store"),
            Ordering::AcqRel => panic!("there is no such thing as an acquire-release store"),
            _ => StoreClass::SeqCst,
        }
    }

    macro_rules! shadow_int_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Shadow of the std atomic of the same name (see module docs
            /// for the two modeled deviations).
            #[repr(transparent)]
            #[derive(Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                pub const fn new(v: $ty) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                fn addr(&self) -> usize {
                    &self.inner as *const _ as usize
                }

                fn seed(&self) -> u64 {
                    // chk: snapshot seeding the model's shadow cell on
                    // first touch; executions are scheduler-serialized,
                    // so the load needs no cross-thread ordering.
                    self.inner.load(Ordering::Relaxed) as u64
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    load_ordering(order);
                    match route(self.addr(), self.seed(), ReqKind::Load) {
                        Some(v) => v as $ty,
                        None => self.inner.load(order),
                    }
                }

                pub fn store(&self, val: $ty, order: Ordering) {
                    let class = store_class(order);
                    if route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Store {
                            val: val as u64,
                            class,
                        },
                    )
                    .is_none()
                    {
                        self.inner.store(val, order);
                    }
                }

                pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                    match route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Rmw {
                            rmw: RmwKind::Swap(val as u64),
                        },
                    ) {
                        Some(old) => old as $ty,
                        None => self.inner.swap(val, order),
                    }
                }

                pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                    match route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Rmw {
                            rmw: RmwKind::Add(val as u64),
                        },
                    ) {
                        Some(old) => old as $ty,
                        None => self.inner.fetch_add(val, order),
                    }
                }

                pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                    match route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Rmw {
                            rmw: RmwKind::Sub(val as u64),
                        },
                    ) {
                        Some(old) => old as $ty,
                        None => self.inner.fetch_sub(val, order),
                    }
                }

                pub fn fetch_or(&self, val: $ty, order: Ordering) -> $ty {
                    match route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Rmw {
                            rmw: RmwKind::Or(val as u64),
                        },
                    ) {
                        Some(old) => old as $ty,
                        None => self.inner.fetch_or(val, order),
                    }
                }

                pub fn fetch_and(&self, val: $ty, order: Ordering) -> $ty {
                    match route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Rmw {
                            rmw: RmwKind::And(val as u64),
                        },
                    ) {
                        Some(old) => old as $ty,
                        None => self.inner.fetch_and(val, order),
                    }
                }

                pub fn fetch_max(&self, val: $ty, order: Ordering) -> $ty {
                    match route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Rmw {
                            rmw: RmwKind::Max(val as u64),
                        },
                    ) {
                        Some(old) => old as $ty,
                        None => self.inner.fetch_max(val, order),
                    }
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    load_ordering(failure);
                    match route(
                        self.addr(),
                        self.seed(),
                        ReqKind::Rmw {
                            rmw: RmwKind::Cas {
                                expected: current as u64,
                                new: new as u64,
                            },
                        },
                    ) {
                        Some(old) => {
                            if old == current as u64 {
                                Ok(old as $ty)
                            } else {
                                Err(old as $ty)
                            }
                        }
                        None => self.inner.compare_exchange(current, new, success, failure),
                    }
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }

                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name))
                        .field(&self.load(Ordering::Relaxed))
                        .finish()
                }
            }

            impl From<$ty> for $name {
                fn from(v: $ty) -> Self {
                    Self::new(v)
                }
            }
        };
    }

    shadow_int_atomic!(AtomicU64, AtomicU64, u64);
    shadow_int_atomic!(AtomicUsize, AtomicUsize, usize);
    shadow_int_atomic!(AtomicU32, AtomicU32, u32);

    /// Shadow of `std::sync::atomic::AtomicBool` (see module docs).
    #[repr(transparent)]
    #[derive(Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        fn addr(&self) -> usize {
            &self.inner as *const _ as usize
        }

        fn seed(&self) -> u64 {
            // chk: shadow-cell seed, as in the integer atomics above.
            self.inner.load(Ordering::Relaxed) as u64
        }

        pub fn load(&self, order: Ordering) -> bool {
            load_ordering(order);
            match route(self.addr(), self.seed(), ReqKind::Load) {
                Some(v) => v != 0,
                None => self.inner.load(order),
            }
        }

        pub fn store(&self, val: bool, order: Ordering) {
            let class = store_class(order);
            if route(
                self.addr(),
                self.seed(),
                ReqKind::Store {
                    val: val as u64,
                    class,
                },
            )
            .is_none()
            {
                self.inner.store(val, order);
            }
        }

        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            match route(
                self.addr(),
                self.seed(),
                ReqKind::Rmw {
                    rmw: RmwKind::Swap(val as u64),
                },
            ) {
                Some(old) => old != 0,
                None => self.inner.swap(val, order),
            }
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            load_ordering(failure);
            match route(
                self.addr(),
                self.seed(),
                ReqKind::Rmw {
                    rmw: RmwKind::Cas {
                        expected: current as u64,
                        new: new as u64,
                    },
                },
            ) {
                Some(old) => {
                    if old == current as u64 {
                        Ok(old != 0)
                    } else {
                        Err(old != 0)
                    }
                }
                None => self.inner.compare_exchange(current, new, success, failure),
            }
        }

        pub fn compare_exchange_weak(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.compare_exchange(current, new, success, failure)
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicBool")
                .field(&self.load(Ordering::Relaxed))
                .finish()
        }
    }

    /// Shadow of `std::sync::atomic::AtomicPtr` (see module docs).
    /// Pointers travel through the scheduler as their address bits.
    #[repr(transparent)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            Self {
                inner: std::sync::atomic::AtomicPtr::new(p),
            }
        }

        fn addr(&self) -> usize {
            &self.inner as *const _ as usize
        }

        fn seed(&self) -> u64 {
            // chk: shadow-cell seed, as in the integer atomics above.
            self.inner.load(Ordering::Relaxed) as usize as u64
        }

        pub fn load(&self, order: Ordering) -> *mut T {
            load_ordering(order);
            match route(self.addr(), self.seed(), ReqKind::Load) {
                Some(v) => v as usize as *mut T,
                None => self.inner.load(order),
            }
        }

        pub fn store(&self, p: *mut T, order: Ordering) {
            let class = store_class(order);
            if route(
                self.addr(),
                self.seed(),
                ReqKind::Store {
                    val: p as usize as u64,
                    class,
                },
            )
            .is_none()
            {
                self.inner.store(p, order);
            }
        }

        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            match route(
                self.addr(),
                self.seed(),
                ReqKind::Rmw {
                    rmw: RmwKind::Swap(p as usize as u64),
                },
            ) {
                Some(old) => old as usize as *mut T,
                None => self.inner.swap(p, order),
            }
        }

        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            load_ordering(failure);
            match route(
                self.addr(),
                self.seed(),
                ReqKind::Rmw {
                    rmw: RmwKind::Cas {
                        expected: current as usize as u64,
                        new: new as usize as u64,
                    },
                },
            ) {
                Some(old) => {
                    if old == current as usize as u64 {
                        Ok(old as usize as *mut T)
                    } else {
                        Err(old as usize as *mut T)
                    }
                }
                None => self.inner.compare_exchange(current, new, success, failure),
            }
        }

        pub fn compare_exchange_weak(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            self.compare_exchange(current, new, success, failure)
        }

        pub fn get_mut(&mut self) -> &mut *mut T {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> *mut T {
            self.inner.into_inner()
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicPtr")
                .field(&self.load(Ordering::Relaxed))
                .finish()
        }
    }
}

/// A mutex the scheduler understands natively: under a model, `lock`
/// announces a `LockAcquire` step that only becomes *enabled* once the
/// lock is free, so blocked waiters cost zero interleavings (no CAS spin
/// loop for the explorer to unroll). Outside a model it degrades to a
/// spinlock on the embedded atomic.
///
/// `ModelMutex` guards *logic*, not data — models use it to mirror a
/// production lock's critical section (e.g. the kv stripe lock) while
/// keeping the shared state in shadow atomics.
#[derive(Default)]
pub struct ModelMutex {
    state: std::sync::atomic::AtomicU64,
}

impl ModelMutex {
    pub const fn new() -> Self {
        Self {
            state: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn addr(&self) -> usize {
        &self.state as *const _ as usize
    }

    pub fn lock(&self) -> ModelMutexGuard<'_> {
        if route(self.addr(), 0, ReqKind::LockAcquire).is_none() {
            use std::sync::atomic::Ordering;
            while self
                .state
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::thread::yield_now();
            }
        }
        ModelMutexGuard { mutex: self }
    }
}

/// RAII guard for [`ModelMutex`]; releases on drop.
pub struct ModelMutexGuard<'a> {
    mutex: &'a ModelMutex,
}

impl Drop for ModelMutexGuard<'_> {
    fn drop(&mut self) {
        if route(self.mutex.addr(), 0, ReqKind::LockRelease).is_none() {
            self.mutex
                .state
                .store(0, std::sync::atomic::Ordering::Release);
        }
    }
}

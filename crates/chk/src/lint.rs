//! `ssync-lint` — the workspace's memory-ordering discipline, enforced.
//!
//! A deliberately small line-level source pass (no `syn`, no regex crate
//! — we are offline) that walks every `*/src/*.rs` file in the workspace
//! and checks seven rules distilled from DESIGN.md's ordering arguments:
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | `relaxed-ptr` | all crates | `Ordering::Relaxed` load/store on a pointer-typed atomic must carry a `// chk:` justification within 3 lines |
//! | `atomic-padding` | kv, mp, repl, cluster, core/stats, core/epoch | `Atomic*` struct fields must be `CachePadded` or `// chk:`-annotated |
//! | `safety-comment` | kv, mp, repl, cluster, core/stats, core/epoch | `unsafe` blocks/impls/fns must have a `// SAFETY:` comment within 5 lines above |
//! | `decode-panic` | `wire*.rs` | functions named `*decode*` must not `panic!`/`unwrap()`/`expect(`/`unreachable!`/`todo!` |
//! | `term-fence` | repl | identifiers with a `term` name segment only meet raw-u64 comparisons — no `+`/`-`/`*`/`/`/`%` or `wrapping_*`/`saturating_*`/`overflowing_*`/`checked_*` without a `// chk:` justification |
//! | `epoch-fence` | cluster | the same discipline for `epoch` name segments — cluster-map epochs are fenced by raw-u64 comparison, and the only legal mutation is the cutover's justified `epoch + 1` |
//! | `epoch-pin` | kv | no raw `.load(` on an `epoch`-segment identifier — the store reads the reclamation epoch only through `EpochDomain`'s pin/`epoch()` API (a raw load can miss the pin protocol's publication fence); `// chk:` escapes |
//!
//! `#[cfg(test)]` regions are exempt from every rule (models and tests
//! construct bare atomics and panic on purpose). `vendor/` and `target/`
//! are never walked. The pass is heuristic by design: it over-approximates
//! (an over-match costs one justification comment, never a missed bug)
//! and the `// chk:` escape hatch keeps it honest — every exception is
//! visible and greppable.

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct LintViolation {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
    /// True if the fix is "add an annotation comment" (the sites
    /// `--fix-safety-stubs` reports).
    pub annotation_fix: bool,
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Result of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<LintViolation>,
    pub files_scanned: usize,
}

/// Lints every workspace source file under `root` (skipping `vendor/`,
/// `target/`, and anything outside a `src/` directory).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_sources(root, root, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        report.violations.extend(lint_source(&rel_str, &src));
        report.files_scanned += 1;
    }
    Ok(report)
}

fn collect_sources(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | ".git" | ".github") {
                continue;
            }
            collect_sources(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            // Only library/binary sources carry the discipline; tests,
            // benches, and examples are exempt wholesale.
            if rel.components().any(|c| c.as_os_str() == "src") {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Which rule families apply to a file.
struct Scope {
    relaxed_ptr: bool,
    padding_and_safety: bool,
    decode_panic: bool,
    term_fence: bool,
    epoch_fence: bool,
    epoch_pin: bool,
}

fn scope_of(path: &str) -> Scope {
    let hot_crate = path.starts_with("crates/kv/")
        || path.starts_with("crates/mp/")
        || path.starts_with("crates/repl/")
        || path.starts_with("crates/cluster/");
    // The observability hot path: histogram counters sit on the record
    // side of every measured request, so they get the same padding and
    // SAFETY discipline as the serving crates. The epoch module is the
    // read path's reclamation machinery — pin records are the very
    // lines the paper's cache-transfer argument is about.
    let core_hot =
        path.starts_with("crates/core/src/stats") || path.starts_with("crates/core/src/epoch");
    let file_name = path.rsplit('/').next().unwrap_or(path);
    Scope {
        relaxed_ptr: true,
        padding_and_safety: hot_crate || core_hot,
        decode_panic: file_name.contains("wire"),
        term_fence: path.starts_with("crates/repl/"),
        epoch_fence: path.starts_with("crates/cluster/"),
        epoch_pin: path.starts_with("crates/kv/"),
    }
}

/// Lints one file's source text; `path` is workspace-relative (used for
/// scoping and reporting).
pub fn lint_source(path: &str, src: &str) -> Vec<LintViolation> {
    let scope = scope_of(path);
    let raw: Vec<&str> = src.lines().collect();
    let stripped = strip_noise(&raw);
    let in_test = test_regions(&stripped);
    let ptr_names = pointer_atomic_names(&stripped);

    let mut out = Vec::new();
    if scope.relaxed_ptr {
        rule_relaxed_ptr(path, &raw, &stripped, &in_test, &ptr_names, &mut out);
    }
    if scope.padding_and_safety {
        rule_atomic_padding(path, &raw, &stripped, &in_test, &mut out);
        rule_safety_comment(path, &raw, &stripped, &in_test, &mut out);
    }
    if scope.decode_panic {
        rule_decode_panic(path, &stripped, &in_test, &mut out);
    }
    if scope.term_fence {
        rule_term_fence(path, &raw, &stripped, &in_test, &mut out);
    }
    if scope.epoch_fence {
        rule_epoch_fence(path, &raw, &stripped, &in_test, &mut out);
    }
    if scope.epoch_pin {
        rule_epoch_pin(path, &raw, &stripped, &in_test, &mut out);
    }
    out.sort_by_key(|v| v.line);
    out
}

// ---------------------------------------------------------------------------
// Source pre-processing.

/// Blanks out string/char literals and comments so structural scans
/// (braces, tokens) see only code. Line count is preserved.
fn strip_noise(raw: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(raw.len());
    let mut in_block_comment = false;
    for line in raw {
        let mut s = String::with_capacity(line.len());
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_str = false;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if in_block_comment {
                if c == '*' && bytes.get(i + 1) == Some(&b'/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            if in_str {
                if c == '\\' {
                    i += 2;
                } else {
                    if c == '"' {
                        in_str = false;
                    }
                    i += 1;
                }
                continue;
            }
            match c {
                '"' => {
                    in_str = true;
                    s.push(' ');
                    i += 1;
                }
                // A quoted char literal; lifetimes ('a) have no closing
                // quote within 2 chars of a non-ident, so only swallow
                // the `'X'` / `'\X'` shapes.
                '\'' => {
                    if bytes.get(i + 1) == Some(&b'\\') && bytes.get(i + 3) == Some(&b'\'') {
                        i += 4;
                        s.push(' ');
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        i += 3;
                        s.push(' ');
                    } else {
                        s.push('\'');
                        i += 1;
                    }
                }
                '/' if bytes.get(i + 1) == Some(&b'/') => break,
                '/' if bytes.get(i + 1) == Some(&b'*') => {
                    in_block_comment = true;
                    i += 2;
                }
                _ => {
                    s.push(c);
                    i += 1;
                }
            }
        }
        out.push(s);
    }
    out
}

/// Marks each line that lies inside a `#[cfg(test)]`-gated block.
fn test_regions(stripped: &[String]) -> Vec<bool> {
    let mut flags = vec![false; stripped.len()];
    let mut depth: i32 = 0;
    // (depth at which the gated block closes)
    let mut gated_until: Option<i32> = None;
    let mut pending_attr = false;
    for (i, line) in stripped.iter().enumerate() {
        let trimmed = line.trim();
        if gated_until.is_some() {
            flags[i] = true;
        }
        if trimmed.contains("#[cfg(test)]") && gated_until.is_none() {
            pending_attr = true;
            flags[i] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_attr && gated_until.is_none() {
                        gated_until = Some(depth);
                        pending_attr = false;
                        flags[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if gated_until == Some(depth) {
                        gated_until = None;
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier ending immediately before byte offset `end` (exclusive).
fn ident_ending_at(line: &str, end: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(&line[start..end])
    }
}

/// All identifier runs in a line.
fn idents(line: &str) -> impl Iterator<Item = &str> {
    line.split(|c: char| !is_ident_char(c))
        .filter(|s| !s.is_empty())
}

/// Collects names bound to pointer-typed atomics in this file: every
/// declaration `name: [&][CachePadded<][Box<[]AtomicPtr…`, plus one-level
/// aliases (`let link = head;`, `link = &node.next;`) of those names.
fn pointer_atomic_names(stripped: &[String]) -> HashSet<String> {
    let mut names: HashSet<String> = HashSet::new();
    for line in stripped {
        let mut from = 0;
        while let Some(pos) = line[from..].find("AtomicPtr") {
            let at = from + pos;
            // Walk back to the governing `:`; stop at delimiters that
            // mean this occurrence is not a `name: Type` declaration.
            let mut j = at;
            let bytes = line.as_bytes();
            let mut colon = None;
            while j > 0 {
                let c = bytes[j - 1] as char;
                if c == ':' {
                    // `::` is a path separator, keep walking.
                    if j >= 2 && bytes[j - 2] as char == ':' {
                        j -= 2;
                        continue;
                    }
                    colon = Some(j - 1);
                    break;
                }
                if matches!(c, '(' | ')' | '{' | '}' | ';' | ',' | '=' | '>') && c != ' ' {
                    break;
                }
                j -= 1;
            }
            if let Some(cpos) = colon {
                let before = line[..cpos].trim_end();
                if let Some(name) = ident_ending_at(before, before.len()) {
                    if name != "mut" && name != "pub" {
                        names.insert(name.to_string());
                    }
                }
            }
            from = at + "AtomicPtr".len();
        }
    }
    // Alias propagation: a binding or re-assignment whose RHS mentions a
    // known pointer-atomic name taints the LHS. Over-approximate on
    // purpose; iterate to a (cheap, two-round) fixpoint.
    for _ in 0..2 {
        let mut added = Vec::new();
        for line in stripped {
            let trimmed = line.trim_start();
            let Some(eq) = trimmed.find('=') else {
                continue;
            };
            if trimmed.as_bytes().get(eq + 1) == Some(&b'=') || eq == 0 {
                continue;
            }
            let (lhs, rhs) = trimmed.split_at(eq);
            if !rhs[1..]
                .split(';')
                .next()
                .unwrap_or("")
                .chars()
                .any(|c| c != ' ')
            {
                continue;
            }
            let lhs_name = {
                let l = lhs
                    .trim_start_matches("let ")
                    .trim_start_matches("mut ")
                    .trim();
                // Skip compound targets (`x.field = …`, `arr[i] = …`).
                if l.chars().all(is_ident_char) && !l.is_empty() {
                    Some(l)
                } else {
                    None
                }
            };
            let Some(lhs_name) = lhs_name else { continue };
            if rhs[1..]
                .split("//")
                .next()
                .unwrap_or("")
                .split(';')
                .next()
                .unwrap_or("")
                .split(' ')
                .flat_map(idents)
                .any(|id| names.contains(id))
            {
                added.push(lhs_name.to_string());
            }
        }
        let before = names.len();
        names.extend(added);
        if names.len() == before {
            break;
        }
    }
    names
}

/// True if the `// chk:` justification marker appears on `line` or within
/// `window` lines above it (raw text, comments included).
fn justified(raw: &[&str], line: usize, marker: &str, window: usize) -> bool {
    let lo = line.saturating_sub(window);
    raw[lo..=line].iter().any(|l| l.contains(marker))
}

// ---------------------------------------------------------------------------
// Rules.

fn rule_relaxed_ptr(
    path: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    ptr_names: &HashSet<String>,
    out: &mut Vec<LintViolation>,
) {
    for (i, line) in stripped.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        for call in [".load(", ".store("] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(call) {
                let at = from + pos;
                from = at + call.len();
                let Some(recv) = ident_ending_at(line, at) else {
                    continue;
                };
                if !ptr_names.contains(recv) {
                    continue;
                }
                // The ordering is the first `Ordering::X` after the call
                // opens — look on this line and the next (rustfmt wraps).
                let mut tail = line[at..].to_string();
                if let Some(next) = stripped.get(i + 1) {
                    tail.push(' ');
                    tail.push_str(next);
                }
                let Some(opos) = tail.find("Ordering::") else {
                    continue;
                };
                let ord: String = tail["Ordering::".len() + opos..]
                    .chars()
                    .take_while(|c| is_ident_char(*c))
                    .collect();
                if ord == "Relaxed" && !justified(raw, i, "// chk:", 3) {
                    out.push(LintViolation {
                        file: path.to_string(),
                        line: i + 1,
                        rule: "relaxed-ptr",
                        msg: format!(
                            "Relaxed {} on pointer-typed atomic `{}` needs a `// chk:` justification",
                            call.trim_matches(['.', '(']),
                            recv
                        ),
                        annotation_fix: true,
                    });
                }
            }
        }
    }
}

fn rule_atomic_padding(
    path: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    out: &mut Vec<LintViolation>,
) {
    // Track which `{` blocks belong to struct declarations.
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_struct = false;
    for (i, line) in stripped.iter().enumerate() {
        let in_struct = stack.last().copied().unwrap_or(false);
        if in_struct && !in_test[i] {
            let trimmed = line.trim();
            if let Some(colon) = trimmed.find(':') {
                let (name_part, ty) = trimmed.split_at(colon);
                let named_field = ident_ending_at(name_part.trim_end(), name_part.trim_end().len())
                    .is_some_and(|n| n != "pub");
                if named_field
                    && ty.contains("Atomic")
                    && !ty.contains("CachePadded")
                    && !justified(raw, i, "// chk:", 3)
                {
                    out.push(LintViolation {
                        file: path.to_string(),
                        line: i + 1,
                        rule: "atomic-padding",
                        msg: format!(
                            "atomic field `{}` is not CachePadded; pad it or justify with `// chk:`",
                            name_part.trim().trim_start_matches("pub ").trim()
                        ),
                        annotation_fix: true,
                    });
                }
            }
        }
        if line.contains("struct ") && !line.contains(';') {
            pending_struct = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    stack.push(pending_struct);
                    pending_struct = false;
                }
                '}' => {
                    stack.pop();
                }
                _ => {}
            }
        }
    }
}

fn rule_safety_comment(
    path: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    out: &mut Vec<LintViolation>,
) {
    for (i, line) in stripped.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = line[from..].find("unsafe") {
            let at = from + pos;
            from = at + "unsafe".len();
            // Token boundaries.
            let before_ok = at == 0 || !is_ident_char(line.as_bytes()[at - 1] as char);
            let after = line.as_bytes().get(at + "unsafe".len()).map(|b| *b as char);
            let after_ok = !after.is_some_and(is_ident_char);
            if !(before_ok && after_ok) {
                continue;
            }
            if !justified(raw, i, "SAFETY:", 5) {
                out.push(LintViolation {
                    file: path.to_string(),
                    line: i + 1,
                    rule: "safety-comment",
                    msg: "`unsafe` without a `// SAFETY:` comment within 5 lines above".to_string(),
                    annotation_fix: true,
                });
            }
            break; // one report per line is enough
        }
    }
}

fn rule_decode_panic(
    path: &str,
    stripped: &[String],
    in_test: &[bool],
    out: &mut Vec<LintViolation>,
) {
    let mut depth: i32 = 0;
    // Depth at which the current decode fn's body closes.
    let mut decode_until: Option<i32> = None;
    let mut pending_decode = false;
    for (i, line) in stripped.iter().enumerate() {
        if line.contains("fn ") {
            let fn_name: String = line
                .split("fn ")
                .nth(1)
                .unwrap_or("")
                .chars()
                .take_while(|c| is_ident_char(*c))
                .collect();
            if fn_name.contains("decode") {
                pending_decode = true;
            }
        }
        if decode_until.is_some() && !in_test[i] {
            for bad in ["panic!", ".unwrap()", ".expect(", "unreachable!", "todo!"] {
                if line.contains(bad) {
                    out.push(LintViolation {
                        file: path.to_string(),
                        line: i + 1,
                        rule: "decode-panic",
                        msg: format!(
                            "`{bad}` inside a wire decode path — return a WireError instead"
                        ),
                        annotation_fix: false,
                    });
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_decode && decode_until.is_none() {
                        decode_until = Some(depth);
                        pending_decode = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if decode_until == Some(depth) {
                        decode_until = None;
                    }
                }
                _ => {}
            }
        }
    }
}

/// True if `ident` carries `term` as a whole snake-case segment
/// (`term`, `my_term`, `frame_term`, `term_word` — but not
/// `determine` or `intermediate`).
fn is_term_ident(ident: &str) -> bool {
    ident.split('_').any(|seg| seg == "term")
}

/// True if `ident` carries `epoch` as a whole snake-case segment
/// (`epoch`, `map_epoch`, `epoch_word` — never a substring match).
fn is_epoch_ident(ident: &str) -> bool {
    ident.split('_').any(|seg| seg == "epoch")
}

/// Terms are fenced by *raw-u64 comparison* (`>` / `>=` on the term or
/// the packed map word) — DESIGN.md's "Failover & term fencing"
/// argument rests on terms never wrapping, so any arithmetic on a
/// term-named identifier is either the one justified `term + 1` of
/// promotion or a bug. Flags binary `+ - * / %` touching such an
/// identifier and `wrapping_*`/`saturating_*`/`overflowing_*`/
/// `checked_*` calls on one, unless a `// chk:` justification sits
/// within 3 lines.
fn rule_term_fence(
    path: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    out: &mut Vec<LintViolation>,
) {
    rule_fenced_word(
        path,
        raw,
        stripped,
        in_test,
        out,
        is_term_ident,
        "term-fence",
        "term",
        "the promotion bump",
    );
}

/// The cluster-map mirror of [`rule_term_fence`]: epochs are fenced by
/// raw-u64 comparison too (DESIGN.md's "Cluster map & live migration"
/// argument — 48-bit epochs never wrap), and the only legal mutation
/// is the cutover CAS's justified `epoch + 1`.
fn rule_epoch_fence(
    path: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    out: &mut Vec<LintViolation>,
) {
    rule_fenced_word(
        path,
        raw,
        stripped,
        in_test,
        out,
        is_epoch_ident,
        "epoch-fence",
        "epoch",
        "the cutover bump",
    );
}

/// Shared body of the fencing rules: flags arithmetic on identifiers
/// the `is_fenced` predicate selects, unless a `// chk:` justification
/// sits within 3 lines.
#[allow(clippy::too_many_arguments)]
fn rule_fenced_word(
    path: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    out: &mut Vec<LintViolation>,
    is_fenced: fn(&str) -> bool,
    rule: &'static str,
    noun: &str,
    bump: &str,
) {
    const METHODS: [&str; 4] = [".wrapping_", ".saturating_", ".overflowing_", ".checked_"];
    for (i, line) in stripped.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let bytes = line.as_bytes();
        let mut reported = false;
        let mut pos = 0;
        while pos < bytes.len() && !reported {
            if !is_ident_char(bytes[pos] as char) {
                pos += 1;
                continue;
            }
            let start = pos;
            while pos < bytes.len() && is_ident_char(bytes[pos] as char) {
                pos += 1;
            }
            if !is_fenced(&line[start..pos]) {
                continue;
            }
            let after = line[pos..].trim_start();
            // `->` is a return-type arrow, not a subtraction.
            let arith_after = ["+", "-", "*", "/", "%"]
                .iter()
                .any(|op| after.starts_with(op) && !after.starts_with("->"));
            let method_after = METHODS.iter().any(|m| after.starts_with(m));
            // Before the identifier: a binary operator only counts if
            // an operand precedes it (otherwise `*term` / `-term` would
            // be a deref or unary, not term arithmetic).
            let before = line[..start].trim_end();
            let arith_before = before
                .strip_suffix(['+', '-', '*', '/', '%'])
                .map(str::trim_end)
                .and_then(|operand| operand.chars().next_back())
                .is_some_and(|c| is_ident_char(c) || c == ')' || c == ']');
            if (arith_after || method_after || arith_before) && !justified(raw, i, "// chk:", 3) {
                out.push(LintViolation {
                    file: path.to_string(),
                    line: i + 1,
                    rule,
                    msg: format!(
                        "arithmetic on {noun}-carrying identifier `{}` — {noun}s only meet raw-u64 comparisons; justify with `// chk:` if this is {bump}",
                        &line[start..pos]
                    ),
                    annotation_fix: true,
                });
                reported = true; // one report per line is enough
            }
        }
    }
}

/// The kv read path's reclamation discipline: the global reclamation
/// epoch is read *only* through `EpochDomain`'s API (`pin()` /
/// `epoch()`), never by a raw atomic load on an epoch-named word. A
/// raw `.load(` can sit before the pin protocol's publication fence —
/// exactly the ordering bug that lets a collector advance past a
/// reader — so inside `crates/kv/` any `.load(` whose receiver carries
/// `epoch` as a whole snake-case segment (`epoch`, `global_epoch`,
/// `epoch_word` — never a substring like `epochs_advanced`) needs a
/// `// chk:` justification within 3 lines.
fn rule_epoch_pin(
    path: &str,
    raw: &[&str],
    stripped: &[String],
    in_test: &[bool],
    out: &mut Vec<LintViolation>,
) {
    for (i, line) in stripped.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = line[from..].find(".load(") {
            let at = from + pos;
            from = at + ".load(".len();
            let Some(recv) = ident_ending_at(line, at) else {
                continue;
            };
            if is_epoch_ident(recv) && !justified(raw, i, "// chk:", 3) {
                out.push(LintViolation {
                    file: path.to_string(),
                    line: i + 1,
                    rule: "epoch-pin",
                    msg: format!(
                        "raw load of epoch-carrying atomic `{recv}` in the kv store — read the \
                         reclamation epoch through a pin guard / `EpochDomain::epoch()`, or \
                         justify with `// chk:`"
                    ),
                    annotation_fix: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_ptr_load_without_justification_flagged() {
        let src = "struct N { next: AtomicPtr<N> }\n\
                   fn f(n: &N) {\n\
                       let p = n.next.load(Ordering::Relaxed);\n\
                   }\n";
        let v = lint_source("crates/kv/src/x.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "relaxed-ptr" && v.line == 3),
            "{v:?}"
        );
    }

    #[test]
    fn relaxed_ptr_load_with_chk_comment_passes() {
        let src = "struct N { next: AtomicPtr<N> }\n\
                   fn f(n: &N) {\n\
                       // chk: under the stripe lock, no concurrent writer\n\
                       let p = n.next.load(Ordering::Relaxed);\n\
                   }\n";
        let v = lint_source("crates/kv/src/x.rs", src);
        assert!(!v.iter().any(|v| v.rule == "relaxed-ptr"), "{v:?}");
    }

    #[test]
    fn relaxed_through_alias_flagged() {
        let src = "fn f(head: &AtomicPtr<N>) {\n\
                       let mut link = head;\n\
                       let p = link.load(Ordering::Relaxed);\n\
                   }\n";
        let v = lint_source("crates/kv/src/x.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "relaxed-ptr" && v.line == 3),
            "{v:?}"
        );
    }

    #[test]
    fn acquire_on_ptr_not_flagged() {
        let src = "struct N { next: AtomicPtr<N> }\n\
                   fn f(n: &N) { let p = n.next.load(Ordering::Acquire); }\n";
        assert!(lint_source("crates/kv/src/x.rs", src).is_empty());
    }

    #[test]
    fn relaxed_on_counter_not_flagged() {
        let src = "struct S { hits: AtomicU64 }\n\
                   fn f(s: &S) { s.hits.load(Ordering::Relaxed); }\n";
        let v = lint_source("src/x.rs", src);
        assert!(!v.iter().any(|v| v.rule == "relaxed-ptr"), "{v:?}");
    }

    #[test]
    fn unpadded_atomic_field_flagged_in_hot_crate_only() {
        let src = "struct S {\n    ctr: AtomicU64,\n}\n";
        let hot = lint_source("crates/kv/src/x.rs", src);
        assert!(
            hot.iter()
                .any(|v| v.rule == "atomic-padding" && v.line == 2),
            "{hot:?}"
        );
        let cold = lint_source("crates/srv/src/x.rs", src);
        assert!(!cold.iter().any(|v| v.rule == "atomic-padding"));
        // The stats module is the observability hot path: padded like
        // the serving crates, while the rest of core stays out of scope.
        let stats = lint_source("crates/core/src/stats.rs", src);
        assert!(
            stats.iter().any(|v| v.rule == "atomic-padding"),
            "{stats:?}"
        );
        let core_cold = lint_source("crates/core/src/topology.rs", src);
        assert!(!core_cold.iter().any(|v| v.rule == "atomic-padding"));
    }

    #[test]
    fn padded_or_annotated_atomic_field_passes() {
        let src = "struct S {\n\
                       seq: CachePadded<AtomicU64>,\n\
                       // chk: adjacent to its data by design (one-line transfer)\n\
                       flag: AtomicU64,\n\
                   }\n";
        assert!(lint_source("crates/mp/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_flagged() {
        let src = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
        let v = lint_source("crates/kv/src/x.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "safety-comment" && v.line == 2),
            "{v:?}"
        );
        let ok = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees p is valid\n    unsafe { p.write(0) };\n}\n";
        assert!(lint_source("crates/kv/src/x.rs", ok).is_empty());
    }

    #[test]
    fn decode_panic_flagged_only_inside_decode_fns() {
        let src = "fn decode(b: &[u8]) -> R {\n    let x = b.first().unwrap();\n}\n\
                   fn encode(b: &mut Vec<u8>) {\n    b.first().unwrap();\n}\n";
        let v = lint_source("crates/srv/src/wire.rs", src);
        assert_eq!(
            v.iter().filter(|v| v.rule == "decode-panic").count(),
            1,
            "{v:?}"
        );
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "struct N { next: AtomicPtr<N> }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f(n: &super::N) { n.next.load(Ordering::Relaxed); }\n\
                       fn g(p: *mut u8) { unsafe { p.read() }; }\n\
                   }\n";
        assert!(lint_source("crates/kv/src/x.rs", src).is_empty());
    }

    #[test]
    fn term_arithmetic_flagged_in_repl_only() {
        let src = "fn f(term: u64) -> u64 {\n    term + 1\n}\n";
        let hot = lint_source("crates/repl/src/x.rs", src);
        assert!(
            hot.iter().any(|v| v.rule == "term-fence" && v.line == 2),
            "{hot:?}"
        );
        let cold = lint_source("crates/kv/src/x.rs", src);
        assert!(!cold.iter().any(|v| v.rule == "term-fence"), "{cold:?}");
    }

    #[test]
    fn term_wrapping_and_segmented_names_flagged() {
        let src = "fn f(my_term: u64, x: u64) -> u64 {\n    my_term.wrapping_add(x)\n}\n";
        let v = lint_source("crates/repl/src/x.rs", src);
        assert!(
            v.iter().any(|v| v.rule == "term-fence" && v.line == 2),
            "{v:?}"
        );
        let rhs = "fn f(frame_term: u64, x: u64) -> u64 {\n    x - frame_term\n}\n";
        let v = lint_source("crates/repl/src/x.rs", rhs);
        assert!(v.iter().any(|v| v.rule == "term-fence"), "{v:?}");
    }

    #[test]
    fn term_comparisons_and_lookalikes_pass() {
        let src = "fn f(term: u64, other: u64, determine: u64, intermediate: u64) -> bool {\n\
                       let _ = determine + intermediate;\n\
                       let _ = term << 16;\n\
                       term >= other && term > 1\n\
                   }\n\
                   fn g(term: &u64) -> u64 { *term }\n";
        let v = lint_source("crates/repl/src/x.rs", src);
        assert!(!v.iter().any(|v| v.rule == "term-fence"), "{v:?}");
    }

    #[test]
    fn epoch_arithmetic_flagged_in_cluster_only() {
        let src = "fn f(epoch: u64, map_epoch: u64) -> u64 {\n    epoch + map_epoch\n}\n";
        let hot = lint_source("crates/cluster/src/x.rs", src);
        assert!(
            hot.iter().any(|v| v.rule == "epoch-fence" && v.line == 2),
            "{hot:?}"
        );
        let cold = lint_source("crates/repl/src/x.rs", src);
        assert!(!cold.iter().any(|v| v.rule == "epoch-fence"), "{cold:?}");
    }

    #[test]
    fn epoch_comparisons_packing_and_justified_bump_pass() {
        let src = "fn f(epoch: u64, other: u64) -> bool {\n\
                       let _ = epoch << 16;\n\
                       epoch >= other\n\
                   }\n\
                   fn g(epoch: u64) -> u64 {\n\
                       // chk: the one legal epoch mutation (cutover bump)\n\
                       epoch + 1\n\
                   }\n";
        let v = lint_source("crates/cluster/src/x.rs", src);
        assert!(!v.iter().any(|v| v.rule == "epoch-fence"), "{v:?}");
    }

    #[test]
    fn cluster_atomic_fields_carry_the_padding_rule() {
        let src = "struct M {\n    word: AtomicU64,\n}\n";
        let v = lint_source("crates/cluster/src/x.rs", src);
        assert!(v.iter().any(|v| v.rule == "atomic-padding"), "{v:?}");
    }

    #[test]
    fn justified_term_bump_passes() {
        let src = "fn f(term: u64) -> u64 {\n\
                       // chk: the one legal term mutation (promotion bump)\n\
                       term + 1\n\
                   }\n";
        let v = lint_source("crates/repl/src/x.rs", src);
        assert!(!v.iter().any(|v| v.rule == "term-fence"), "{v:?}");
    }

    #[test]
    fn epoch_pin_raw_load_flagged_in_kv_only() {
        let src = "fn f(global_epoch: &AtomicU64) -> u64 {\n\
                       global_epoch.load(Ordering::Acquire)\n\
                   }\n";
        let hot = lint_source("crates/kv/src/x.rs", src);
        assert!(
            hot.iter().any(|v| v.rule == "epoch-pin" && v.line == 2),
            "{hot:?}"
        );
        let core = lint_source("crates/core/src/epoch.rs", src);
        assert!(!core.iter().any(|v| v.rule == "epoch-pin"), "{core:?}");
        let cluster = lint_source("crates/cluster/src/x.rs", src);
        assert!(
            !cluster.iter().any(|v| v.rule == "epoch-pin"),
            "{cluster:?}"
        );
    }

    #[test]
    fn epoch_pin_api_calls_counters_and_justified_loads_pass() {
        let src = "fn f(kv: &KvStore, stats: &Stats, seq: &AtomicU64) -> u64 {\n\
                       let tag = kv.epoch.epoch();\n\
                       let n = stats.epochs_advanced.load(Ordering::Relaxed);\n\
                       // chk: shutdown path, no concurrent collector\n\
                       let g = kv.epoch_word.load(Ordering::Acquire);\n\
                       tag + n + g + seq.load(Ordering::Acquire)\n\
                   }\n";
        let v = lint_source("crates/kv/src/x.rs", src);
        assert!(!v.iter().any(|v| v.rule == "epoch-pin"), "{v:?}");
    }

    #[test]
    fn core_epoch_module_carries_padding_and_safety_rules() {
        let src = "struct D {\n    global: AtomicU64,\n}\n";
        let v = lint_source("crates/core/src/epoch.rs", src);
        assert!(v.iter().any(|v| v.rule == "atomic-padding"), "{v:?}");
        let unsafe_src = "fn f(p: *mut u8) {\n    unsafe { p.write(0) };\n}\n";
        let v = lint_source("crates/core/src/epoch.rs", unsafe_src);
        assert!(v.iter().any(|v| v.rule == "safety-comment"), "{v:?}");
    }

    #[test]
    fn string_literals_do_not_confuse_the_scanner() {
        let src = "fn decode(b: &[u8]) -> String {\n    format!(\"panic! {{}} unwrap()\", 1)\n}\n";
        let v = lint_source("crates/srv/src/wire.rs", src);
        assert!(!v.iter().any(|v| v.rule == "decode-panic"), "{v:?}");
    }
}

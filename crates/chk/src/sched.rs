//! The deterministic cooperative scheduler and its DFS explorer.
//!
//! One *model* run ([`crate::Builder::check`]) is a loop of *executions*.
//! Every execution re-runs the model closure from scratch with 2–4 model
//! threads whose shadow-atomic operations are serialized by a controller
//! thread: a model thread runs freely until it reaches a shadow operation,
//! announces it, and parks; once every live thread is parked (or finished,
//! or blocked), the controller picks exactly one announced step to execute
//! and wakes its thread. The whole execution is therefore serial and — for
//! a fixed choice sequence — byte-for-byte deterministic, which is exactly
//! the right shape for the 1-core dev box: exploration costs no real
//! parallelism, only scheduling decisions.
//!
//! # Exploration
//!
//! Choice sequences are enumerated by depth-first search with replay
//! (stateless model checking): the stack of decision nodes persists across
//! executions, each execution replays the current prefix and extends it.
//! Two reductions keep the tree small:
//!
//! * **DPOR-lite (sleep sets)**: after exploring child `s` of a node, `s`
//!   goes to sleep for the node's later children; descending through step
//!   `c` keeps asleep exactly the entries *independent* of `c` (different
//!   locations, or same location with no write — "adjacent steps touching
//!   different locations commute"). A node whose every enabled step is
//!   asleep is pruned: every interleaving below it is a commutation of one
//!   already explored.
//! * **Preemption bounding**: once a path has used its budget of
//!   involuntary context switches, the previously running thread keeps
//!   running until it blocks or finishes (Musuvathi & Qadeer's iterative
//!   context bounding, fixed-bound variant).
//!
//! The run is additionally capped at `max_executions`; hitting the cap
//! sets [`crate::Report::truncated`] so callers can tell "proved for this
//! scope" apart from "ran out of budget". Everything is seeded and
//! deterministic — a failing schedule replays exactly.
//!
//! # Weak-memory mode
//!
//! With [`crate::Builder::weak_memory`], non-SeqCst stores do not hit
//! shared memory immediately: they enter the storing thread's *store
//! buffer*, and buffer-to-memory flushes become scheduler steps of their
//! own. A `Relaxed` store may flush out of order (it only preserves
//! per-location order), while a `Release` store flushes only once the
//! buffer holds nothing older — the one-way barrier that makes
//! publish-pointer protocols sound. Loads forward from the thread's own
//! buffer, so a thread always sees its own program order; *other* threads
//! see stores in flush order. This models store–store reordering (the
//! class that breaks publication protocols: a data store passing its flag,
//! a ring slot passing its tail) but not load–load reordering; see
//! DESIGN.md "Concurrency checking" for the scope argument.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub(crate) type Tid = usize;
pub(crate) type LocId = usize;
pub(crate) type Val = u64;

/// Marker payload for panics used to unwind model threads when an
/// execution is aborted (violation elsewhere, or a pruned branch). The
/// thread wrapper catches it silently.
pub(crate) struct ChkAbort;

/// Store-side ordering class (loads need no class: weak effects are
/// modeled entirely on the store side).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum StoreClass {
    Relaxed,
    Release,
    SeqCst,
}

/// Read-modify-write flavors used by the workspace.
#[derive(Clone, Copy, Debug)]
pub(crate) enum RmwKind {
    Add(Val),
    Sub(Val),
    Max(Val),
    Or(Val),
    And(Val),
    Swap(Val),
    Cas { expected: Val, new: Val },
}

impl RmwKind {
    fn apply(self, old: Val) -> Val {
        match self {
            RmwKind::Add(v) => old.wrapping_add(v),
            RmwKind::Sub(v) => old.wrapping_sub(v),
            RmwKind::Max(v) => old.max(v),
            RmwKind::Or(v) => old | v,
            RmwKind::And(v) => old & v,
            RmwKind::Swap(v) => v,
            RmwKind::Cas { expected, new } => {
                if old == expected {
                    new
                } else {
                    old
                }
            }
        }
    }
}

/// An announced operation, with its location resolved.
#[derive(Clone, Copy, Debug)]
pub(crate) enum OpKind {
    Load {
        loc: LocId,
    },
    Store {
        loc: LocId,
        val: Val,
        class: StoreClass,
    },
    Rmw {
        loc: LocId,
        rmw: RmwKind,
    },
    LockAcquire {
        loc: LocId,
    },
    LockRelease {
        loc: LocId,
    },
    Yield,
    Spawn,
    Join {
        target: Tid,
    },
}

/// What a model thread hands to [`Shared::perform`]: the operation plus
/// the raw address and seed value of the touched atomic (0/unused for
/// location-free operations).
pub(crate) struct Req {
    pub addr: usize,
    pub init: Val,
    pub kind: ReqKind,
}

pub(crate) enum ReqKind {
    Load,
    Store { val: Val, class: StoreClass },
    Rmw { rmw: RmwKind },
    LockAcquire,
    LockRelease,
    Yield,
    Spawn,
    Join { target: Tid },
}

/// `(location, is_write)` — `None` for operations (spawn/join/yield) that
/// are conservatively dependent with everything.
pub(crate) type Footprint = Option<(LocId, bool)>;

fn footprint(op: &OpKind) -> Footprint {
    match *op {
        OpKind::Load { loc } => Some((loc, false)),
        OpKind::Store { loc, .. } | OpKind::Rmw { loc, .. } => Some((loc, true)),
        OpKind::LockAcquire { loc } | OpKind::LockRelease { loc } => Some((loc, true)),
        OpKind::Yield | OpKind::Spawn | OpKind::Join { .. } => None,
    }
}

/// Identity of one schedulable step, stable across replays of the same
/// prefix (locations register in deterministic order; store sequence
/// numbers are assigned in grant order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum StepId {
    /// The announced operation of a model thread.
    Prog(Tid),
    /// Flushing the store-buffer entry with sequence `seq` of thread
    /// `tid` (weak-memory mode only).
    Flush { tid: Tid, seq: u64 },
}

impl StepId {
    fn owner(self) -> Tid {
        match self {
            StepId::Prog(t) | StepId::Flush { tid: t, .. } => t,
        }
    }
}

/// Two steps commute iff they belong to different threads and touch
/// different locations (or only read a common one). Location-free steps
/// never commute — conservative, so pruning stays sound.
fn independent(a: (StepId, Footprint), b: (StepId, Footprint)) -> bool {
    if a.0.owner() == b.0.owner() {
        return false;
    }
    match (a.1, b.1) {
        (Some((la, wa)), Some((lb, wb))) => la != lb || (!wa && !wb),
        _ => false,
    }
}

struct BufEntry {
    loc: LocId,
    val: Val,
    class: StoreClass,
    seq: u64,
}

#[derive(PartialEq, Eq, Debug)]
enum Status {
    /// Executing model code; the controller waits for its next announce.
    Running,
    /// Announced an operation and parked.
    Pending,
    Finished,
}

struct ThreadState {
    status: Status,
    /// Announced but not yet location-resolved operation. Resolution is
    /// deferred to the controller's quiescence point (`resolve_pending`)
    /// so that fresh locations register in thread-id order: threads
    /// announce from concurrently-running real segments, and letting
    /// announce order assign `LocId`s would make the numbering a
    /// wall-clock race — the DFS stack's stored footprints would then
    /// disagree with later executions' numbering and pruning would go
    /// nondeterministic.
    unresolved: Option<Req>,
    pending: Option<OpKind>,
    granted: bool,
    /// For a pending `Yield`: set once any *other* step executes, which
    /// is what makes `yield`-loops schedulable without livelock — a
    /// yielded thread cannot be rescheduled until someone else moved.
    yield_ready: bool,
    buffer: Vec<BufEntry>,
}

impl ThreadState {
    fn new(status: Status) -> Self {
        ThreadState {
            status,
            unresolved: None,
            pending: None,
            granted: false,
            yield_ready: false,
            buffer: Vec::new(),
        }
    }
}

struct Memory {
    addr_to_loc: HashMap<usize, LocId>,
    global: Vec<Val>,
    locked: Vec<bool>,
}

impl Memory {
    fn resolve(&mut self, addr: usize, init: Val) -> LocId {
        if let Some(&loc) = self.addr_to_loc.get(&addr) {
            return loc;
        }
        let loc = self.global.len();
        self.addr_to_loc.insert(addr, loc);
        self.global.push(init);
        self.locked.push(false);
        loc
    }
}

pub(crate) struct State {
    threads: Vec<ThreadState>,
    mem: Memory,
    weak: bool,
    max_steps: usize,
    steps_taken: usize,
    next_store_seq: u64,
    violation: Option<String>,
    abort: bool,
}

impl State {
    /// The value a load by `tid` observes: the newest same-location entry
    /// of its own store buffer (store forwarding), else committed memory.
    fn read_visible(&self, tid: Tid, loc: LocId) -> Val {
        self.threads[tid]
            .buffer
            .iter()
            .rev()
            .find(|e| e.loc == loc)
            .map(|e| e.val)
            .unwrap_or(self.mem.global[loc])
    }

    /// Commits every buffered store of `tid` in program order (always a
    /// legal flush order). Used at RMWs, SeqCst stores, lock releases,
    /// spawns, and thread exit.
    fn flush_all(&mut self, tid: Tid) {
        for e in std::mem::take(&mut self.threads[tid].buffer) {
            self.mem.global[e.loc] = e.val;
        }
    }

    /// After any step executes, pending `Yield`s of *other* threads
    /// become schedulable.
    fn note_step_executed(&mut self, by: Tid) {
        for (tid, t) in self.threads.iter_mut().enumerate() {
            if tid != by && matches!(t.pending, Some(OpKind::Yield)) {
                t.yield_ready = true;
            }
        }
    }

    fn fail(&mut self, msg: String) {
        if self.violation.is_none() {
            self.violation = Some(msg);
        }
        self.abort = true;
    }

    /// Applies the granted operation of `tid` (called by the thread
    /// itself, under the state lock). Returns the operation's result.
    fn apply(&mut self, tid: Tid) -> Val {
        let op = self.threads[tid]
            .pending
            .take()
            .expect("granted without a pending op");
        let mut result = 0;
        match op {
            OpKind::Load { loc } => result = self.read_visible(tid, loc),
            OpKind::Store { loc, val, class } => {
                if self.weak && class != StoreClass::SeqCst {
                    let seq = self.next_store_seq;
                    self.next_store_seq += 1;
                    self.threads[tid].buffer.push(BufEntry {
                        loc,
                        val,
                        class,
                        seq,
                    });
                } else {
                    self.flush_all(tid);
                    self.mem.global[loc] = val;
                }
            }
            OpKind::Rmw { loc, rmw } => {
                // RMWs act on committed memory: flush first, then
                // read-modify-write. (Modeled strong — every RMW in the
                // workspace is a lock/version-counter operation whose
                // atomicity, not buffering, is the property under test.)
                self.flush_all(tid);
                let old = self.mem.global[loc];
                self.mem.global[loc] = rmw.apply(old);
                result = old;
            }
            OpKind::LockAcquire { loc } => {
                debug_assert!(!self.mem.locked[loc], "granted a lock that is held");
                self.mem.locked[loc] = true;
            }
            OpKind::LockRelease { loc } => {
                // Unlock is a release operation: publish everything first.
                self.flush_all(tid);
                self.mem.locked[loc] = false;
            }
            OpKind::Yield => {}
            OpKind::Spawn => {
                // Spawn is a release edge into the child.
                self.flush_all(tid);
                result = self.threads.len() as Val;
                self.threads.push(ThreadState::new(Status::Running));
            }
            OpKind::Join { target } => {
                debug_assert_eq!(self.threads[target].status, Status::Finished);
            }
        }
        self.note_step_executed(tid);
        self.threads[tid].status = Status::Running;
        self.steps_taken += 1;
        if self.steps_taken > self.max_steps {
            self.fail(format!(
                "step limit {} exceeded: livelock or runaway loop — a spin \
                 loop waiting on a signal no live thread will send (lost \
                 wakeup), or a loop not going through yield_now",
                self.max_steps
            ));
        }
        result
    }

    /// Resolves every announced-but-unresolved operation, in thread-id
    /// order. Called by the controller once the system is quiescent, so
    /// fresh locations always register in the same deterministic order
    /// regardless of which thread's announce won the real-time race to
    /// the state lock.
    fn resolve_pending(&mut self) {
        for tid in 0..self.threads.len() {
            let Some(req) = self.threads[tid].unresolved.take() else {
                continue;
            };
            let kind = match req.kind {
                ReqKind::Load => OpKind::Load {
                    loc: self.mem.resolve(req.addr, req.init),
                },
                ReqKind::Store { val, class } => OpKind::Store {
                    loc: self.mem.resolve(req.addr, req.init),
                    val,
                    class,
                },
                ReqKind::Rmw { rmw } => OpKind::Rmw {
                    loc: self.mem.resolve(req.addr, req.init),
                    rmw,
                },
                ReqKind::LockAcquire => OpKind::LockAcquire {
                    loc: self.mem.resolve(req.addr, req.init),
                },
                ReqKind::LockRelease => OpKind::LockRelease {
                    loc: self.mem.resolve(req.addr, req.init),
                },
                ReqKind::Yield => OpKind::Yield,
                ReqKind::Spawn => OpKind::Spawn,
                ReqKind::Join { target } => OpKind::Join { target },
            };
            self.threads[tid].pending = Some(kind);
        }
    }

    /// True if the announced operation of `tid` can execute now.
    fn op_enabled(&self, tid: Tid) -> bool {
        match self.threads[tid].pending {
            Some(OpKind::Join { target }) => {
                // Join is an acquire of everything the target did: it
                // waits for the target's buffered stores to commit too.
                self.threads[target].status == Status::Finished
                    && self.threads[target].buffer.is_empty()
            }
            Some(OpKind::LockAcquire { loc }) => !self.mem.locked[loc],
            Some(OpKind::Yield) => self.threads[tid].yield_ready,
            Some(_) => true,
            None => false,
        }
    }

    /// The deterministic enabled-step list: program steps by thread id,
    /// then flush steps by (thread id, buffer position).
    fn enabled_steps(&self) -> Vec<(StepId, Footprint)> {
        let mut steps = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            if t.status == Status::Pending && self.op_enabled(tid) {
                steps.push((StepId::Prog(tid), footprint(t.pending.as_ref().unwrap())));
            }
        }
        for (tid, t) in self.threads.iter().enumerate() {
            for (i, e) in t.buffer.iter().enumerate() {
                let coherence_ok = !t.buffer[..i].iter().any(|p| p.loc == e.loc);
                let barrier_ok = match e.class {
                    StoreClass::Relaxed => true,
                    // A Release store passes nothing that precedes it.
                    StoreClass::Release => i == 0,
                    StoreClass::SeqCst => unreachable!("SeqCst stores are never buffered"),
                };
                if coherence_ok && barrier_ok {
                    steps.push((StepId::Flush { tid, seq: e.seq }, Some((e.loc, true))));
                }
            }
        }
        // Last-resort yields: a yielded thread normally waits for some
        // other step to execute first, but when nothing else in the
        // system can move, forcing it to wait would turn a bounded
        // courtesy-yield loop into a spurious deadlock. Let it run; a
        // genuine lost wakeup then spins into the step limit instead.
        if steps.is_empty() {
            for (tid, t) in self.threads.iter().enumerate() {
                if t.status == Status::Pending && matches!(t.pending, Some(OpKind::Yield)) {
                    steps.push((StepId::Prog(tid), None));
                }
            }
        }
        steps
    }

    fn apply_flush(&mut self, tid: Tid, seq: u64) {
        let pos = self.threads[tid]
            .buffer
            .iter()
            .position(|e| e.seq == seq)
            .expect("flush step for a missing buffer entry");
        let e = self.threads[tid].buffer.remove(pos);
        self.mem.global[e.loc] = e.val;
        self.note_step_executed(tid);
        self.steps_taken += 1;
    }

    /// Human-readable description of a step, for violation traces.
    fn describe(&self, id: StepId) -> String {
        match id {
            StepId::Prog(tid) => match self.threads[tid].pending {
                Some(op) => format!("t{tid}:{op:?}"),
                None => format!("t{tid}:?"),
            },
            StepId::Flush { tid, seq } => format!("t{tid}:Flush(seq {seq})"),
        }
    }
}

pub(crate) struct Shared {
    state: Mutex<State>,
    /// The controller waits here for announces/finishes.
    cv_ctrl: Condvar,
    /// Model threads wait here for their grant (or the abort flag).
    cv_threads: Condvar,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    /// Announces `req` for thread `tid`, parks until the controller
    /// grants it, applies it, and returns the result. This is the single
    /// chokepoint every shadow operation goes through.
    pub(crate) fn perform(&self, tid: Tid, req: Req) -> Val {
        let mut st = lock(&self.state);
        if st.abort {
            drop(st);
            return abort_current_thread();
        }
        st.threads[tid].unresolved = Some(req);
        st.threads[tid].status = Status::Pending;
        st.threads[tid].yield_ready = false;
        self.cv_ctrl.notify_all();
        while !st.threads[tid].granted {
            if st.abort {
                drop(st);
                return abort_current_thread();
            }
            st = self.cv_threads.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[tid].granted = false;
        let val = st.apply(tid);
        self.cv_ctrl.notify_all();
        val
    }

    fn mark_finished(&self, tid: Tid, panic_msg: Option<String>) {
        let mut st = lock(&self.state);
        // The thread's store buffer is NOT flushed here: buffered stores
        // outlive the thread as schedulable flush steps, so a reader can
        // still observe the pre-store state after the writer exits. Join
        // only becomes enabled once the buffer drains.
        st.threads[tid].status = Status::Finished;
        st.threads[tid].unresolved = None;
        st.threads[tid].pending = None;
        if let Some(msg) = panic_msg {
            st.fail(msg);
            self.cv_threads.notify_all();
        }
        self.cv_ctrl.notify_all();
    }
}

/// Unwinds the calling model thread out of an aborted execution — unless
/// it is already unwinding (a `Drop` running a shadow op mid-panic), in
/// which case we return a dummy value instead of double-panicking.
fn abort_current_thread() -> Val {
    if std::thread::panicking() {
        return 0;
    }
    std::panic::panic_any(ChkAbort);
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Shared>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with the calling thread's execution handle, if it is a model
/// thread of an active execution.
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Shared>, Tid) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(sh, tid)| f(sh, *tid)))
}

/// Spawns the OS thread backing model thread `tid` running `body`.
pub(crate) fn spawn_model_thread(
    shared: Arc<Shared>,
    tid: Tid,
    body: Box<dyn FnOnce() + Send>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("ssync-chk-t{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), tid)));
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
            CURRENT.with(|c| *c.borrow_mut() = None);
            let panic_msg = match outcome {
                Ok(()) => None,
                Err(payload) if payload.is::<ChkAbort>() => None,
                Err(payload) => Some(payload_to_string(payload.as_ref())),
            };
            shared.mark_finished(tid, panic_msg);
        })
        .expect("spawning a model thread")
}

fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked".to_string()
    }
}

// ---------------------------------------------------------------------------
// DFS exploration.

const NO_CURSOR: usize = usize::MAX;

struct Node {
    enabled: Vec<(StepId, Footprint)>,
    /// Visit order over `enabled` (seed-rotated, deterministic).
    order: Vec<usize>,
    /// Indices already fully explored.
    explored: Vec<usize>,
    /// Sleeping steps: explored siblings plus inherited entries.
    sleep: Vec<(StepId, Footprint)>,
    /// Index being explored right now (`NO_CURSOR` if sleep-blocked).
    cursor: usize,
}

impl Node {
    fn next_candidate(&self, from: usize) -> Option<usize> {
        self.order[from..].iter().copied().find(|&i| {
            !self.explored.contains(&i)
                && !self.sleep.iter().any(|(id, _)| *id == self.enabled[i].0)
        })
    }
}

/// SplitMix64 finalizer — local copy (this crate is dependency-free).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) struct Explorer {
    stack: Vec<Node>,
    depth: usize,
    seed: u64,
    pub(crate) sleep_pruned: u64,
    pub(crate) max_depth: usize,
}

pub(crate) enum Choice {
    Step(StepId),
    /// Every enabled step is asleep: the branch is redundant.
    Pruned,
}

impl Explorer {
    pub(crate) fn new(seed: u64) -> Self {
        Explorer {
            stack: Vec::new(),
            depth: 0,
            seed,
            sleep_pruned: 0,
            max_depth: 0,
        }
    }

    pub(crate) fn begin_execution(&mut self) {
        self.depth = 0;
    }

    /// Picks the step to execute at the current decision point, given the
    /// deterministic enabled list.
    pub(crate) fn choose(&mut self, enabled: Vec<(StepId, Footprint)>) -> Choice {
        if self.depth < self.stack.len() {
            // Replay: the node exists; re-execute its current choice.
            let node = &self.stack[self.depth];
            debug_assert!(
                node.cursor != NO_CURSOR && node.enabled.len() == enabled.len(),
                "replay divergence: schedule prefix no longer matches"
            );
            let id = node.enabled[node.cursor].0;
            self.depth += 1;
            return Choice::Step(id);
        }
        // New node: inherit the sleep set through the step that led here.
        let sleep = match self.stack.last() {
            Some(parent) => {
                let via = parent.enabled[parent.cursor];
                parent
                    .sleep
                    .iter()
                    .copied()
                    .filter(|&s| independent(s, via))
                    .collect()
            }
            None => Vec::new(),
        };
        let n = enabled.len();
        let start = if n == 0 {
            0
        } else {
            (mix64(self.seed ^ self.depth as u64) as usize) % n
        };
        let order: Vec<usize> = (0..n).map(|i| (start + i) % n).collect();
        let mut node = Node {
            enabled,
            order,
            explored: Vec::new(),
            sleep,
            cursor: NO_CURSOR,
        };
        let candidate = node.next_candidate(0);
        match candidate {
            Some(i) => {
                node.cursor = i;
                let id = node.enabled[i].0;
                self.stack.push(node);
                self.depth += 1;
                self.max_depth = self.max_depth.max(self.depth);
                Choice::Step(id)
            }
            None => {
                self.sleep_pruned += 1;
                self.stack.push(node);
                Choice::Pruned
            }
        }
    }

    /// After an execution ends, moves the deepest node with an untried
    /// candidate to that candidate. Returns false when the tree is
    /// exhausted.
    pub(crate) fn backtrack(&mut self) -> bool {
        loop {
            let Some(node) = self.stack.last_mut() else {
                return false;
            };
            if node.cursor != NO_CURSOR {
                let chosen = node.enabled[node.cursor];
                node.sleep.push(chosen);
                node.explored.push(node.cursor);
            }
            if let Some(i) = node.next_candidate(0) {
                node.cursor = i;
                return true;
            }
            self.stack.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// The controller: one execution.

pub(crate) struct ExecResult {
    pub violation: Option<(String, Vec<String>)>,
    pub pruned: bool,
}

pub(crate) fn run_execution(
    f: &Arc<dyn Fn() + Send + Sync>,
    explorer: &mut Explorer,
    cfg: &crate::Builder,
) -> ExecResult {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            threads: vec![ThreadState::new(Status::Running)],
            mem: Memory {
                addr_to_loc: HashMap::new(),
                global: Vec::new(),
                locked: Vec::new(),
            },
            weak: cfg.weak_memory,
            max_steps: cfg.max_steps,
            steps_taken: 0,
            next_store_seq: 0,
            violation: None,
            abort: false,
        }),
        cv_ctrl: Condvar::new(),
        cv_threads: Condvar::new(),
    });
    let body = Arc::clone(f);
    let h0 = spawn_model_thread(Arc::clone(&shared), 0, Box::new(move || body()));

    explorer.begin_execution();
    let mut trace: Vec<String> = Vec::new();
    let mut prev_prog: Option<Tid> = None;
    let mut preemptions = 0usize;
    let mut pruned = false;

    loop {
        let mut st = lock(&shared.state);
        // Wait for quiescence: every thread announced, finished, or the
        // execution failed.
        loop {
            if st.abort {
                break;
            }
            let settled = st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Pending | Status::Finished) && !t.granted);
            if settled {
                break;
            }
            st = shared.cv_ctrl.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            break;
        }
        if st
            .threads
            .iter()
            .all(|t| t.status == Status::Finished && t.buffer.is_empty())
        {
            drop(st);
            break;
        }

        st.resolve_pending();
        let mut enabled = st.enabled_steps();
        if enabled.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Pending)
                .map(|(tid, t)| format!("t{tid} blocked on {:?}", t.pending))
                .collect();
            st.fail(format!(
                "deadlock: no schedulable step ({})",
                if blocked.is_empty() {
                    "all threads yielded".to_string()
                } else {
                    blocked.join("; ")
                }
            ));
            shared.cv_threads.notify_all();
            drop(st);
            break;
        }

        // Preemption bounding: with the budget spent, the previously
        // running thread keeps running while it can (flushes stay free —
        // they model the memory system, not the OS scheduler).
        if preemptions >= cfg.preemption_bound {
            if let Some(p) = prev_prog {
                if enabled.iter().any(|(id, _)| *id == StepId::Prog(p)) {
                    enabled.retain(|(id, _)| {
                        *id == StepId::Prog(p) || matches!(id, StepId::Flush { .. })
                    });
                }
            }
        }

        let choice = explorer.choose(enabled.clone());
        let id = match choice {
            Choice::Step(id) => id,
            Choice::Pruned => {
                pruned = true;
                st.abort = true;
                shared.cv_threads.notify_all();
                drop(st);
                break;
            }
        };
        trace.push(st.describe(id));
        match id {
            StepId::Prog(tid) => {
                if let Some(p) = prev_prog {
                    if p != tid && enabled.iter().any(|(e, _)| *e == StepId::Prog(p)) {
                        preemptions += 1;
                    }
                }
                prev_prog = Some(tid);
                st.threads[tid].granted = true;
                shared.cv_threads.notify_all();
            }
            StepId::Flush { tid, seq } => {
                st.apply_flush(tid, seq);
            }
        }
        drop(st);
    }

    // Drain: wake everything and wait for every model thread to exit its
    // wrapper (they mark Finished on the way out).
    {
        let mut st = lock(&shared.state);
        shared.cv_threads.notify_all();
        while !st.threads.iter().all(|t| t.status == Status::Finished) {
            shared.cv_threads.notify_all();
            st = shared.cv_ctrl.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = h0.join();

    let st = lock(&shared.state);
    ExecResult {
        violation: st.violation.clone().map(|msg| (msg, trace)),
        pruned: pruned && st.violation.is_none(),
    }
}

//! `ssync-lint` — CLI for the workspace ordering-discipline pass.
//!
//! ```text
//! cargo run --release -p ssync-chk --bin ssync-lint            # gate: exit 1 on violations
//! cargo run -p ssync-chk --bin ssync-lint -- --fix-safety-stubs  # dry run: list sites, exit 0
//! cargo run -p ssync-chk --bin ssync-lint -- --root path/to/ws
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ssync_chk::lint;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut fix_stubs = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix-safety-stubs" => fix_stubs = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("ssync-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: ssync-lint [--root <workspace>] [--fix-safety-stubs]\n\
                     \n\
                     Checks the workspace ordering discipline (see DESIGN.md):\n\
                     relaxed-ptr, atomic-padding, safety-comment, decode-panic,\n\
                     term-fence, epoch-fence.\n\
                     --fix-safety-stubs lists missing-annotation sites without failing."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ssync-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let report = match lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ssync-lint: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if fix_stubs {
        let stubs: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.annotation_fix)
            .collect();
        println!(
            "ssync-lint: {} file(s) scanned; {} site(s) missing an annotation",
            report.files_scanned,
            stubs.len()
        );
        for v in &stubs {
            let stub = match v.rule {
                "safety-comment" => "// SAFETY: <why this cannot race or alias>",
                _ => "// chk: <why this ordering/layout is sound>",
            };
            println!("{v}\n    suggested stub: {stub}");
        }
        return ExitCode::SUCCESS;
    }

    for v in &report.violations {
        println!("{v}");
    }
    if report.violations.is_empty() {
        println!("ssync-lint: clean ({} files scanned)", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        println!(
            "ssync-lint: {} violation(s) in {} file(s) scanned",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

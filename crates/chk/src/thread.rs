//! Model-aware `thread::{spawn, yield_now}` shims.
//!
//! Inside a model execution, `spawn` registers a new model thread with
//! the scheduler (a `Spawn` step — a release edge into the child) and
//! `JoinHandle::join` announces a `Join` step that becomes enabled only
//! once the target finishes, so joins block without spinning. Outside a
//! model both fall through to `std::thread`.
//!
//! `yield_now` inside a model has loom-style semantics: the yielding
//! thread is not schedulable again until *some other* step executes, and
//! "every live thread is parked in a yield" counts as a deadlock
//! violation. That is precisely the shape of a lost wakeup — a polling
//! loop that yields forever because the notification it waits for was
//! dropped — so models write their spin loops as
//! `while !ready { yield_now() }` and the checker does the rest.

use std::sync::{Arc, Mutex};

use crate::sched::{self, Req, ReqKind};

/// Handle to a spawned model (or plain std) thread.
pub struct JoinHandle<T> {
    inner: Option<std::thread::JoinHandle<()>>,
    /// Model thread id when spawned inside an execution.
    target: Option<usize>,
    /// The closure's return value, parked until `join`.
    result: Arc<Mutex<Option<T>>>,
}

/// Spawns a thread. At most a handful of threads per model (2–3 plus the
/// model's root thread) keeps exploration tractable.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let body = move || {
        let value = f();
        *slot.lock().unwrap() = Some(value);
    };
    let handle = sched::with_current(|sh, tid| (Arc::clone(sh), tid));
    match handle {
        Some((sh, my_tid)) => {
            let new_tid = sh.perform(
                my_tid,
                Req {
                    addr: 0,
                    init: 0,
                    kind: ReqKind::Spawn,
                },
            ) as usize;
            let inner = sched::spawn_model_thread(sh, new_tid, Box::new(body));
            JoinHandle {
                inner: Some(inner),
                target: Some(new_tid),
                result,
            }
        }
        None => JoinHandle {
            inner: Some(std::thread::spawn(body)),
            target: None,
            result,
        },
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its value. Inside a
    /// model this is a scheduler step (enabled once the target finished
    /// *and*, under weak memory, its store buffer drained — a join is an
    /// acquire of the whole thread); the underlying OS join then returns
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if the joined thread panicked (matching
    /// `std::thread::JoinHandle::join().unwrap()`).
    pub fn join(mut self) -> T {
        if let Some(target) = self.target {
            let handle = sched::with_current(|sh, tid| (Arc::clone(sh), tid));
            if let Some((sh, my_tid)) = handle {
                sh.perform(
                    my_tid,
                    Req {
                        addr: 0,
                        init: 0,
                        kind: ReqKind::Join { target },
                    },
                );
            }
        }
        if let Some(inner) = self.inner.take() {
            // Model threads never propagate panics through the OS handle
            // (the wrapper catches them and reports to the scheduler);
            // for plain std threads, propagate like `std::thread::join`
            // + unwrap would.
            if inner.join().is_err() {
                panic!("joined thread panicked");
            }
        }
        // A model thread that panicked was already reported as a
        // violation, and our own `Join` step above would have torn this
        // thread down with it — a missing value here is a plain bug.
        let value = self.result.lock().unwrap().take();
        value.expect("joined thread produced no value")
    }
}

/// Cooperative yield; see the module docs for model semantics.
pub fn yield_now() {
    let handle = sched::with_current(|sh, tid| (Arc::clone(sh), tid));
    match handle {
        Some((sh, tid)) => {
            sh.perform(
                tid,
                Req {
                    addr: 0,
                    init: 0,
                    kind: ReqKind::Yield,
                },
            );
        }
        None => std::thread::yield_now(),
    }
}

//! # ssync-tm
//!
//! A software transactional memory in the mould of TM2C (Section 4.3 of
//! the paper; Gramoli, Guerraoui & Trigonakis, EuroSys'12): word-based
//! transactions over a shared heap, with **eager (encounter-time)
//! conflict detection**, in two builds:
//!
//! * [`shared`] — the shared-memory version "built with the spin locks
//!   of libslock": per-stripe ownership records guarded by `ssync-locks`
//!   try-locks, in-place writes with an undo log.
//! * [`mp`] — the message-passing version: a distributed lock service
//!   where server threads own address ranges and grant/deny access over
//!   `ssync-mp` channels, as TM2C's DTM servers do.
//!
//! Both expose the same closure-based interface: [`shared::TmHeap::run`]
//! retries the transaction until it commits.
//!
//! # Examples
//!
//! ```
//! use ssync_tm::shared::TmHeap;
//! use ssync_locks::TtasLock;
//!
//! let heap: TmHeap<TtasLock> = TmHeap::new(16);
//! heap.run(|tx| {
//!     let v = tx.read(0)?;
//!     tx.write(0, v + 1)?;
//!     Ok(())
//! });
//! assert_eq!(heap.peek(0), 1);
//! ```

pub mod mp;
pub mod shared;

/// Why a transaction attempt failed (it will be retried).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxError {
    /// Another transaction holds a needed word.
    Conflict,
}

/// Result alias for transactional closures.
pub type TxResult<T> = Result<T, TxError>;

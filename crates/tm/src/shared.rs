//! The shared-memory STM: striped two-phase locking with undo.
//!
//! Every heap word maps to an ownership record (orec); a transaction
//! acquires the orec with a **try-lock** on first access (read or
//! write — TM2C detects conflicts eagerly on both), writes in place with
//! an undo log, and on conflict releases everything, rolls back, backs
//! off, and retries. Two-phase locking with a deadlock-free try-lock
//! acquisition order makes committed transactions serializable.

use core::sync::atomic::{AtomicU64, Ordering};

use ssync_core::Backoff;
use ssync_locks::RawLock;

use crate::{TxError, TxResult};

/// Words per ownership record (a stripe).
const STRIPE: usize = 4;

/// A transactional heap of `u64` words.
pub struct TmHeap<R: RawLock + Default> {
    words: Box<[AtomicU64]>,
    orecs: Box<[R]>,
}

impl<R: RawLock + Default> TmHeap<R> {
    /// Creates a zeroed heap of `len` words.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "heap must have at least one word");
        Self {
            words: (0..len).map(|_| AtomicU64::new(0)).collect(),
            orecs: (0..len.div_ceil(STRIPE)).map(|_| R::default()).collect(),
        }
    }

    /// Heap length in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the heap has no words (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Non-transactional read (tests / initialization only).
    pub fn peek(&self, addr: usize) -> u64 {
        self.words[addr].load(Ordering::SeqCst)
    }

    /// Non-transactional write (tests / initialization only).
    pub fn poke(&self, addr: usize, value: u64) {
        self.words[addr].store(value, Ordering::SeqCst);
    }

    /// Runs `body` transactionally, retrying on conflict until it
    /// commits; returns the closure's result.
    pub fn run<T>(&self, mut body: impl FnMut(&mut Tx<'_, R>) -> TxResult<T>) -> T {
        let mut backoff = Backoff::new();
        loop {
            let mut tx = Tx {
                heap: self,
                held: Vec::new(),
                undo: Vec::new(),
            };
            match body(&mut tx) {
                Ok(value) => {
                    tx.commit();
                    return value;
                }
                Err(TxError::Conflict) => {
                    tx.abort();
                    backoff.spin();
                }
            }
        }
    }

    fn orec_of(&self, addr: usize) -> usize {
        addr / STRIPE
    }
}

/// An in-flight transaction.
pub struct Tx<'h, R: RawLock + Default> {
    heap: &'h TmHeap<R>,
    /// Acquired orecs: (index, token).
    held: Vec<(usize, R::Token)>,
    /// Undo log: (addr, previous value), newest last.
    undo: Vec<(usize, u64)>,
}

impl<R: RawLock + Default> Tx<'_, R> {
    fn ensure_orec(&mut self, addr: usize) -> TxResult<()> {
        let orec = self.heap.orec_of(addr);
        if self.held.iter().any(|(o, _)| *o == orec) {
            return Ok(());
        }
        match self.heap.orecs[orec].try_lock() {
            Some(token) => {
                self.held.push((orec, token));
                Ok(())
            }
            None => Err(TxError::Conflict),
        }
    }

    /// Transactionally reads a word.
    pub fn read(&mut self, addr: usize) -> TxResult<u64> {
        self.ensure_orec(addr)?;
        Ok(self.heap.words[addr].load(Ordering::Acquire))
    }

    /// Transactionally writes a word (in place, undo-logged).
    pub fn write(&mut self, addr: usize, value: u64) -> TxResult<()> {
        self.ensure_orec(addr)?;
        let old = self.heap.words[addr].swap(value, Ordering::AcqRel);
        self.undo.push((addr, old));
        Ok(())
    }

    fn commit(self) {
        // In-place writes are already visible; releasing the orecs is
        // the serialization point.
        for (orec, token) in self.held {
            self.heap.orecs[orec].unlock(token);
        }
    }

    fn abort(self) {
        // Roll back newest-first so overlapping writes restore the
        // original values.
        for (addr, old) in self.undo.into_iter().rev() {
            self.heap.words[addr].store(old, Ordering::Release);
        }
        for (orec, token) in self.held {
            self.heap.orecs[orec].unlock(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssync_locks::{TasLock, TicketLock, TtasLock};

    #[test]
    fn read_write_commit() {
        let heap: TmHeap<TtasLock> = TmHeap::new(8);
        let old = heap.run(|tx| {
            let v = tx.read(3)?;
            tx.write(3, 42)?;
            Ok(v)
        });
        assert_eq!(old, 0);
        assert_eq!(heap.peek(3), 42);
    }

    #[test]
    fn explicit_conflict_rolls_back() {
        let heap: TmHeap<TtasLock> = TmHeap::new(8);
        heap.poke(0, 5);
        let mut attempts = 0;
        heap.run(|tx| {
            attempts += 1;
            tx.write(0, 99)?;
            if attempts == 1 {
                // Simulate a conflict after the write: the undo log must
                // restore word 0 before the retry observes it.
                return Err(TxError::Conflict);
            }
            assert_eq!(tx.read(0)?, 99);
            Ok(())
        });
        assert_eq!(attempts, 2);
        assert_eq!(heap.peek(0), 99);
    }

    #[test]
    fn transfer_preserves_total() {
        // The classic bank benchmark: concurrent transfers keep the sum.
        let heap: TmHeap<TasLock> = TmHeap::new(16);
        for a in 0..16 {
            heap.poke(a, 100);
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let heap = &heap;
                s.spawn(move || {
                    let mut x = t;
                    for _ in 0..200 {
                        // Cheap deterministic "random" account pair.
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let from = (x >> 33) as usize % 16;
                        let to = (x >> 13) as usize % 16;
                        if from == to {
                            continue;
                        }
                        heap.run(|tx| {
                            let a = tx.read(from)?;
                            let b = tx.read(to)?;
                            tx.write(from, a.wrapping_sub(1))?;
                            tx.write(to, b.wrapping_add(1))?;
                            Ok(())
                        });
                        std::thread::yield_now();
                    }
                });
            }
        });
        let total: u64 = (0..16).map(|a| heap.peek(a)).sum();
        assert_eq!(total, 1600);
    }

    #[test]
    fn counter_increments_are_not_lost() {
        let heap: TmHeap<TicketLock> = TmHeap::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let heap = &heap;
                s.spawn(move || {
                    for _ in 0..1000 {
                        heap.run(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)?;
                            Ok(())
                        });
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(heap.peek(0), 4000);
    }

    #[test]
    fn same_stripe_access_is_reentrant() {
        // Words 0..4 share an orec; touching several must not deadlock
        // against ourselves.
        let heap: TmHeap<TtasLock> = TmHeap::new(8);
        heap.run(|tx| {
            tx.write(0, 1)?;
            tx.write(1, 2)?;
            tx.write(2, 3)?;
            Ok(())
        });
        assert_eq!((heap.peek(0), heap.peek(1), heap.peek(2)), (1, 2, 3));
    }
}

//! The message-passing STM: a distributed lock-and-data service.
//!
//! TM2C partitions transactional metadata across DTM server threads;
//! clients request word access by message, and the owning server grants
//! or denies eagerly. This module implements the same structure with one
//! server owning the whole heap (TM2C's per-range servers shard this
//! loop; the single-server build keeps the native crate compact — the
//! simulator's Figure 11 message-passing harness covers the sharded
//! shape):
//!
//! * `Acquire(tx, addr)` → `Granted(value)` if free or already ours,
//!   `Denied` otherwise (the client then aborts and retries).
//! * `Write(addr, value)` — buffered on the server, applied at commit.
//! * `Commit(tx)` / `Abort(tx)` — release all grants (commit applies
//!   buffered writes first).

use std::collections::HashMap;
use std::thread::JoinHandle;

use ssync_core::{Backoff, SpinWait};
use ssync_mp::channel::{channel, Receiver, Sender};
use ssync_mp::hub::ServerHub;

use crate::{TxError, TxResult};

const REQ_ACQUIRE: u64 = 1;
const REQ_WRITE: u64 = 2;
const REQ_COMMIT: u64 = 3;
const REQ_ABORT: u64 = 4;
const REQ_PEEK: u64 = 5;
const REQ_SHUTDOWN: u64 = 6;

const REP_GRANTED: u64 = 1;
const REP_DENIED: u64 = 2;
const REP_OK: u64 = 3;

/// Handle owning the DTM server thread.
pub struct MpTm {
    server: Option<JoinHandle<()>>,
    shutdown: Sender,
}

/// A per-thread client endpoint.
pub struct MpTmClient {
    /// This client's id doubles as its transaction owner id.
    id: u64,
    tx: Sender,
    rx: Receiver,
}

impl MpTm {
    /// Spawns the server owning a `heap_len`-word heap, returning client
    /// endpoints.
    pub fn spawn(heap_len: usize, n_clients: usize) -> (MpTm, Vec<MpTmClient>) {
        assert!(heap_len > 0 && n_clients > 0);
        let mut clients = Vec::new();
        let mut req_rx = Vec::new();
        let mut rep_tx = Vec::new();
        for id in 0..n_clients {
            let (req_s, req_r) = channel();
            let (rep_s, rep_r) = channel();
            clients.push(MpTmClient {
                id: id as u64,
                tx: req_s,
                rx: rep_r,
            });
            req_rx.push(req_r);
            rep_tx.push(rep_s);
        }
        let (shutdown_tx, shutdown_rx) = channel();
        let server = std::thread::spawn(move || {
            server_loop(heap_len, req_rx, rep_tx, shutdown_rx);
        });
        (
            MpTm {
                server: Some(server),
                shutdown: shutdown_tx,
            },
            clients,
        )
    }

    /// Stops the server (drop all clients first).
    pub fn shutdown(mut self) {
        self.shutdown.send([REQ_SHUTDOWN, 0, 0, 0, 0, 0, 0]);
        if let Some(h) = self.server.take() {
            h.join().expect("DTM server panicked");
        }
    }
}

struct ServerState {
    words: Vec<u64>,
    /// Word owner: client id + 1 (0 = free).
    owner: Vec<u64>,
    /// Buffered writes per client: (addr, value).
    pending: HashMap<u64, Vec<(usize, u64)>>,
    /// Grants per client for release.
    grants: HashMap<u64, Vec<usize>>,
}

fn server_loop(heap_len: usize, requests: Vec<Receiver>, replies: Vec<Sender>, shutdown: Receiver) {
    let mut st = ServerState {
        words: vec![0; heap_len],
        owner: vec![0; heap_len],
        pending: HashMap::new(),
        grants: HashMap::new(),
    };
    let mut hub = ServerHub::new(requests);
    let mut wait = SpinWait::new();
    loop {
        if shutdown.try_recv().is_some() {
            return;
        }
        let Some((client, msg)) = hub.try_recv_from_any() else {
            wait.snooze();
            continue;
        };
        wait = SpinWait::new();
        let me = client as u64 + 1;
        let [op, addr, value, ..] = msg;
        let addr = addr as usize;
        match op {
            REQ_ACQUIRE => {
                if st.owner[addr] == 0 || st.owner[addr] == me {
                    if st.owner[addr] == 0 {
                        st.owner[addr] = me;
                        st.grants.entry(me).or_default().push(addr);
                    }
                    replies[client].send([REP_GRANTED, st.words[addr], 0, 0, 0, 0, 0]);
                } else {
                    replies[client].send([REP_DENIED, 0, 0, 0, 0, 0, 0]);
                }
            }
            REQ_WRITE => {
                debug_assert_eq!(st.owner[addr], me, "write without grant");
                st.pending.entry(me).or_default().push((addr, value));
                replies[client].send([REP_OK, 0, 0, 0, 0, 0, 0]);
            }
            REQ_COMMIT => {
                for (addr, value) in st.pending.remove(&me).unwrap_or_default() {
                    st.words[addr] = value;
                }
                for addr in st.grants.remove(&me).unwrap_or_default() {
                    st.owner[addr] = 0;
                }
                replies[client].send([REP_OK, 0, 0, 0, 0, 0, 0]);
            }
            REQ_ABORT => {
                st.pending.remove(&me);
                for addr in st.grants.remove(&me).unwrap_or_default() {
                    st.owner[addr] = 0;
                }
                replies[client].send([REP_OK, 0, 0, 0, 0, 0, 0]);
            }
            REQ_PEEK => {
                replies[client].send([REP_OK, st.words[addr], 0, 0, 0, 0, 0]);
            }
            _ => replies[client].send([REP_OK, 0, 0, 0, 0, 0, 0]),
        }
    }
}

impl MpTmClient {
    /// Runs `body` transactionally, retrying on conflicts.
    pub fn run<T>(&self, mut body: impl FnMut(&mut MpTx<'_>) -> TxResult<T>) -> T {
        let mut backoff = Backoff::new();
        loop {
            let mut tx = MpTx { client: self };
            match body(&mut tx) {
                Ok(value) => {
                    self.call([REQ_COMMIT, 0, 0, 0, 0, 0, 0]);
                    return value;
                }
                Err(TxError::Conflict) => {
                    self.call([REQ_ABORT, 0, 0, 0, 0, 0, 0]);
                    backoff.spin();
                }
            }
        }
    }

    /// Non-transactional read (tests).
    pub fn peek(&self, addr: usize) -> u64 {
        self.call([REQ_PEEK, addr as u64, 0, 0, 0, 0, 0])[1]
    }

    fn call(&self, msg: [u64; 7]) -> [u64; 7] {
        self.tx.send(msg);
        self.rx.recv()
    }

    /// This client's id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// An in-flight message-passing transaction.
pub struct MpTx<'c> {
    client: &'c MpTmClient,
}

impl MpTx<'_> {
    /// Transactionally reads a word (acquires it at the server).
    pub fn read(&mut self, addr: usize) -> TxResult<u64> {
        let rep = self.client.call([REQ_ACQUIRE, addr as u64, 0, 0, 0, 0, 0]);
        if rep[0] == REP_GRANTED {
            Ok(rep[1])
        } else {
            Err(TxError::Conflict)
        }
    }

    /// Transactionally writes a word (acquire + buffered write).
    pub fn write(&mut self, addr: usize, value: u64) -> TxResult<()> {
        // Ensure the grant first.
        self.read(addr)?;
        let rep = self
            .client
            .call([REQ_WRITE, addr as u64, value, 0, 0, 0, 0]);
        debug_assert_eq!(rep[0], REP_OK);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_client_commit() {
        let (tm, mut clients) = MpTm::spawn(8, 1);
        let c = clients.remove(0);
        let old = c.run(|tx| {
            let v = tx.read(2)?;
            tx.write(2, v + 7)?;
            Ok(v)
        });
        assert_eq!(old, 0);
        assert_eq!(c.peek(2), 7);
        drop(c);
        tm.shutdown();
    }

    #[test]
    fn concurrent_counters_do_not_lose_updates() {
        let (tm, mut clients) = MpTm::spawn(4, 4);
        let probe = clients.pop().expect("probe client");
        std::thread::scope(|s| {
            for c in clients {
                s.spawn(move || {
                    for _ in 0..100 {
                        c.run(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1)?;
                            Ok(())
                        });
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(probe.peek(0), 300);
        drop(probe);
        tm.shutdown();
    }

    #[test]
    fn transfers_preserve_total_mp() {
        let (tm, mut clients) = MpTm::spawn(8, 3);
        let probe = clients.pop().expect("probe client");
        for a in 0..8 {
            probe.run(|tx| tx.write(a, 100).map(|_| ()));
        }
        std::thread::scope(|s| {
            for c in clients {
                s.spawn(move || {
                    let mut x = c.id() + 1;
                    for _ in 0..80 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                        let from = (x >> 33) as usize % 8;
                        let to = (x >> 13) as usize % 8;
                        if from == to {
                            continue;
                        }
                        c.run(|tx| {
                            let a = tx.read(from)?;
                            let b = tx.read(to)?;
                            tx.write(from, a.wrapping_sub(1))?;
                            tx.write(to, b.wrapping_add(1))?;
                            Ok(())
                        });
                        std::thread::yield_now();
                    }
                });
            }
        });
        let total: u64 = (0..8).map(|a| probe.peek(a)).sum();
        assert_eq!(total, 800);
        drop(probe);
        tm.shutdown();
    }
}

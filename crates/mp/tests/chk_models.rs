//! Model-checked interleavings of the real `ssync-mp` transports.
//!
//! Compiled only under `RUSTFLAGS='--cfg ssync_chk'`: the crate's
//! atomics resolve to `ssync-chk` shadow atomics and `SpinWait` /
//! `ParkingWait` degenerate to one scheduler yield per poll, so the
//! checker exhaustively interleaves the actual `send`/`recv` protocol
//! code — the Lamport ring's head/tail handshake and the one-line
//! channel's flag protocol — up to the preemption bound.
//!
//! Run with:
//! `RUSTFLAGS='--cfg ssync_chk' cargo test -p ssync-mp --test chk_models`
#![cfg(ssync_chk)]

use ssync_chk::{thread, Builder};
use ssync_core::ParkingWait;
use ssync_mp::{channel, ring_channel, MSG_WORDS};

/// Producer streams more frames than the ring holds; consumer drains
/// them. Every frame must arrive exactly once, in order — no loss on
/// wrap-around, no duplication when the producer blocks on a full ring,
/// and both blocking loops must terminate (a lost wakeup would be
/// reported as a livelock).
#[test]
fn ring_delivers_every_frame_in_order_across_wraps() {
    let report = Builder::new().check(|| {
        let (tx, rx) = ring_channel(2);
        let producer = thread::spawn(move || {
            for i in 1..=3u64 {
                tx.send([i; MSG_WORDS]);
            }
        });
        for i in 1..=3u64 {
            let m = rx.recv();
            assert_eq!(
                m, [i; MSG_WORDS],
                "frame {i} lost, duplicated, or reordered"
            );
        }
        producer.join();
        assert!(rx.try_recv().is_none(), "phantom frame after the stream");
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("ring strong-memory model: {} executions", report.executions);
}

/// The same ring protocol under the store-buffer memory model: the
/// Release stores of `tail` (publish) and `head` (slot hand-back) are
/// all that orders the two sides, and they must still be enough.
#[test]
fn ring_protocol_is_sound_under_weak_memory() {
    let report = Builder::new().with_weak_memory(true).check(|| {
        let (tx, rx) = ring_channel(2);
        let producer = thread::spawn(move || {
            tx.send([7; MSG_WORDS]);
            tx.send([8; MSG_WORDS]);
        });
        assert_eq!(rx.recv(), [7; MSG_WORDS]);
        assert_eq!(rx.recv(), [8; MSG_WORDS]);
        producer.join();
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("ring weak-memory model: {} executions", report.executions);
}

/// A consumer idling in `ParkingWait::snooze` (the server-loop wait,
/// which on real hardware escalates from spinning to parking) must be
/// woken by a concurrent send in every interleaving: if the flag
/// publication could race past the poll, the checker would report the
/// parked consumer as a livelock.
#[test]
fn parking_consumer_never_misses_a_wakeup() {
    let report = Builder::new().check(|| {
        let (tx, rx) = channel();
        let consumer = thread::spawn(move || {
            let mut wait = ParkingWait::new();
            loop {
                if let Some(m) = rx.try_recv() {
                    return m;
                }
                wait.snooze();
            }
        });
        tx.send([42; MSG_WORDS]);
        assert_eq!(consumer.join(), [42; MSG_WORDS]);
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("parking wakeup model: {} executions", report.executions);
}

/// The one-line channel's full/empty flag protocol round-trips two
/// messages in order, and the sender's busy-wait for the buffer to
/// drain never deadlocks against the receiver's wait for it to fill.
#[test]
fn channel_ping_pong_is_fifo_and_live() {
    let report = Builder::new().check(|| {
        let (tx, rx) = channel();
        let producer = thread::spawn(move || {
            tx.send([1; MSG_WORDS]);
            tx.send([2; MSG_WORDS]);
        });
        assert_eq!(rx.recv(), [1; MSG_WORDS]);
        assert_eq!(rx.recv(), [2; MSG_WORDS]);
        producer.join();
        assert!(!rx.has_message(), "phantom message after the stream");
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("channel FIFO model: {} executions", report.executions);
}

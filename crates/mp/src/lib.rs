//! # ssync-mp
//!
//! A native Rust port of `libssmp`, the paper's message-passing library
//! built **over cache coherence**: a channel is a single cache-line-sized
//! buffer with a flag word, written by exactly one sender and drained by
//! exactly one receiver, so every message moves between cores with
//! single-cache-line transfers (Section 4.1).
//!
//! * [`channel`] — the one-directional SPSC cache-line channel.
//! * [`ring`] — the same protocol with queue depth (a bounded SPSC
//!   ring), for oversubscribed hosts where a one-deep buffer turns
//!   every multi-frame transfer into a context-switch pair per frame.
//! * [`hub`] — client/server helpers: receive from any client or from a
//!   subset, as `libssmp` provides for server loops; generic over both
//!   channel flavours.
//!
//! # Examples
//!
//! ```
//! use ssync_mp::channel::channel;
//!
//! let (tx, rx) = channel();
//! std::thread::scope(|s| {
//!     s.spawn(move || tx.send([1, 2, 3, 4, 5, 6, 7]));
//!     let msg = rx.recv();
//!     assert_eq!(msg[0], 1);
//! });
//! ```

pub mod channel;
pub mod hub;
pub mod ring;
pub(crate) mod sync;

pub use channel::{channel, Message, Receiver, Sender, MSG_WORDS};
pub use hub::{Disconnected, MsgReceiver, MsgSender, RecvError, ServerHub};
pub use ring::{ring_channel, RingReceiver, RingSender};

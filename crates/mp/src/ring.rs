//! A bounded SPSC *ring* channel: the one-line channel's protocol with
//! queue depth.
//!
//! The single-buffer channel ([`crate::channel`]) is the paper's
//! `libssmp` model: one cache line, one message in flight, the
//! transfer itself the unit of cost. That is the right model when
//! sender and receiver run on their own cores — the receiver drains
//! concurrently and the buffer never holds the sender long. On an
//! oversubscribed host it serializes differently: every frame of a
//! multi-frame message (a long value's continuation frames, a
//! replication stream's back-to-back entries) blocks the sender until
//! the *scheduler* runs the receiver, so an N-frame transfer costs N
//! context-switch pairs.
//!
//! The ring keeps the wire format (cache-line [`Message`] frames, SPSC
//! by construction, FIFO) but gives the channel `depth` slots — a
//! classic Lamport queue with padded head/tail counters. A server can
//! write an entire multi-frame reply and move on; a primary can stream
//! a burst of replication entries without handing the core over per
//! entry. The replication layer (`ssync-repl`) wires its mesh with
//! rings; the figure-facing benches keep the single-line channel, whose
//! cost model is the one the paper calibrates.

use crate::sync::atomic::{AtomicU64, Ordering};
use core::cell::UnsafeCell;
use std::sync::Arc;

use ssync_core::{CachePadded, SpinWait};

use crate::channel::Message;
use crate::MSG_WORDS;

struct Ring {
    slots: Box<[UnsafeCell<Message>]>,
    /// Next slot the consumer reads; only the consumer advances it.
    head: CachePadded<AtomicU64>,
    /// Next slot the producer writes; only the producer advances it.
    tail: CachePadded<AtomicU64>,
    /// Dropped-half bits ([`crate::channel`]'s `TX_CLOSED`/`RX_CLOSED`),
    /// on their own line so the Lamport fast path never touches it;
    /// polled only from the cold branch of blocking loops.
    closed: CachePadded<AtomicU64>,
}

use crate::channel::{RX_CLOSED, TX_CLOSED};

// SAFETY: slot `i` is written only by the unique producer while
// `i - head < depth` (vs an Acquire load of `head`), published by the
// Release store of `tail`, and read by the unique consumer only once
// an Acquire load of `tail` covers it — no slot is ever accessed
// concurrently.
unsafe impl Sync for Ring {}

/// Sending half: exactly one per ring.
pub struct RingSender {
    ring: Arc<Ring>,
}

/// Receiving half: exactly one per ring.
pub struct RingReceiver {
    ring: Arc<Ring>,
}

/// Creates a bounded SPSC ring channel with `depth` message slots.
///
/// # Panics
///
/// Panics if `depth` is zero (use [`crate::channel`] for the
/// single-line model) or not a power of two.
pub fn ring_channel(depth: usize) -> (RingSender, RingReceiver) {
    assert!(depth > 0, "ring depth must be positive");
    assert!(depth.is_power_of_two(), "ring depth must be a power of two");
    let ring = Arc::new(Ring {
        slots: (0..depth)
            .map(|_| UnsafeCell::new([0; MSG_WORDS]))
            .collect(),
        head: CachePadded::new(AtomicU64::new(0)),
        tail: CachePadded::new(AtomicU64::new(0)),
        closed: CachePadded::new(AtomicU64::new(0)),
    });
    (
        RingSender {
            ring: Arc::clone(&ring),
        },
        RingReceiver { ring },
    )
}

impl Drop for RingSender {
    fn drop(&mut self) {
        // Release-ordered so a receiver that sees the bit also sees
        // every message published before the drop.
        self.ring.closed.fetch_or(TX_CLOSED, Ordering::Release);
    }
}

impl Drop for RingReceiver {
    fn drop(&mut self) {
        self.ring.closed.fetch_or(RX_CLOSED, Ordering::Release);
    }
}

impl RingSender {
    /// Sends a message, spinning (then yielding) while the ring is
    /// full.
    pub fn send(&self, msg: Message) {
        let mut wait = SpinWait::new();
        while self.try_send(msg).is_err() {
            wait.snooze();
        }
    }

    /// Attempts to send without blocking; returns the message back if
    /// the ring is full.
    pub fn try_send(&self, msg: Message) -> Result<(), Message> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        // Coherence keeps both counters monotone from this side's view,
        // so even a lagging `head` satisfies the ring invariant.
        debug_assert!(
            head <= tail && tail - head <= self.ring.slots.len() as u64,
            "ring counters out of range: head {head}, tail {tail}"
        );
        if tail - head == self.ring.slots.len() as u64 {
            return Err(msg);
        }
        let idx = (tail as usize) & (self.ring.slots.len() - 1);
        // SAFETY: the slot is past `head` (consumer done with it) and
        // before the published `tail` (consumer cannot read it yet);
        // we are the unique producer.
        unsafe { *self.ring.slots[idx].get() = msg };
        self.ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// True if the receiving half has been dropped: anything sent now
    /// (or still queued) will never be read.
    pub fn receiver_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire) & RX_CLOSED != 0
    }
}

impl RingReceiver {
    /// Receives the next message, spinning (then yielding) until one
    /// arrives.
    pub fn recv(&self) -> Message {
        let mut wait = SpinWait::new();
        loop {
            match self.try_recv() {
                Some(m) => return m,
                None => wait.snooze(),
            }
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Option<Message> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        // Mirror of the producer-side invariant; a violation here means
        // a torn publication, not mere staleness.
        debug_assert!(
            head <= tail && tail - head <= self.ring.slots.len() as u64,
            "ring counters out of range: head {head}, tail {tail}"
        );
        if head == tail {
            return None;
        }
        let idx = (head as usize) & (self.ring.slots.len() - 1);
        // SAFETY: the slot is covered by the Acquire-loaded `tail`
        // (producer published it) and we are the unique consumer.
        let msg = unsafe { *self.ring.slots[idx].get() };
        self.ring.head.store(head + 1, Ordering::Release);
        Some(msg)
    }

    /// True if a message is waiting (advisory).
    pub fn has_message(&self) -> bool {
        self.ring.head.load(Ordering::Relaxed) != self.ring.tail.load(Ordering::Relaxed)
    }

    /// True if the sending half has been dropped. Queued messages may
    /// still be waiting — drain with [`RingReceiver::try_recv`] before
    /// concluding the conversation is over.
    pub fn sender_closed(&self) -> bool {
        self.ring.closed.load(Ordering::Acquire) & TX_CLOSED != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = ring_channel(8);
        for i in 0..8u64 {
            tx.try_send([i; MSG_WORDS]).unwrap();
        }
        assert!(tx.try_send([99; MSG_WORDS]).is_err(), "ring must bound");
        for i in 0..8u64 {
            assert_eq!(rx.recv(), [i; MSG_WORDS]);
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn wraps_around_many_times() {
        let (tx, rx) = ring_channel(4);
        for i in 0..1000u64 {
            tx.send([i, i + 1, 0, 0, 0, 0, 0]);
            if i % 3 == 0 {
                // Drain lazily so the ring wraps at varying fill.
                while let Some(m) = rx.try_recv() {
                    assert_eq!(m[1], m[0] + 1);
                }
            }
        }
        while rx.try_recv().is_some() {}
    }

    #[test]
    fn threaded_burst_transfer_is_fifo() {
        let (tx, rx) = ring_channel(16);
        const N: u64 = 5_000;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    tx.send([i, 0, 0, 0, 0, 0, 0]);
                }
            });
            for i in 0..N {
                assert_eq!(rx.recv()[0], i);
            }
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = ring_channel(6);
    }

    #[test]
    fn dropping_a_half_is_visible_and_queued_messages_survive() {
        let (tx, rx) = ring_channel(4);
        tx.send([1; MSG_WORDS]);
        tx.send([2; MSG_WORDS]);
        drop(tx);
        assert!(rx.sender_closed());
        // The drop signal must not eat the queued backlog.
        assert_eq!(rx.try_recv(), Some([1; MSG_WORDS]));
        assert_eq!(rx.try_recv(), Some([2; MSG_WORDS]));
        assert!(rx.try_recv().is_none());

        let (tx, rx) = ring_channel(4);
        assert!(!tx.receiver_closed());
        drop(rx);
        assert!(tx.receiver_closed());
    }
}

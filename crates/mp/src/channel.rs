//! The one-directional cache-line channel.
//!
//! Layout follows `libssmp`: one cache line holds a flag word plus the
//! payload, so a message transfer is (at the coherence level) one line
//! moving from the sender's cache to the receiver's. The flag encodes
//! empty (0) / full (1); the sender busy-waits for empty, the receiver
//! for full — single-producer single-consumer by construction, enforced
//! in the API by non-cloneable [`Sender`]/[`Receiver`] halves.
//!
//! Each half's `Drop` records itself on a *separate* cache line (the
//! transfer line keeps the calibrated one-line cost model), so the
//! surviving half can tell "peer is gone" from "peer is slow" —
//! [`Sender::receiver_closed`] / [`Receiver::sender_closed`], which the
//! blocking-with-escape paths in [`crate::hub`] build on. Without the
//! signal, a client blocked in `recv` on a dead server spins forever.

use crate::sync::atomic::{AtomicU64, Ordering};
use core::cell::UnsafeCell;
use std::sync::Arc;

use ssync_core::{CachePadded, SpinWait};

/// Payload words per message: 7 × 8 bytes + the 8-byte flag fill one
/// 64-byte cache line.
pub const MSG_WORDS: usize = 7;

/// A message: seven 64-bit words (56 bytes of payload).
pub type Message = [u64; MSG_WORDS];

struct Buffer {
    /// 0 = empty, 1 = full. Also the publication point for `data`.
    // chk: deliberately unpadded — flag and payload *sharing* one cache
    // line is the libssmp cost model (the whole buffer is wrapped in
    // one `CachePadded` at the channel).
    flag: AtomicU64,
    data: UnsafeCell<Message>,
}

// SAFETY: `data` is written only by the unique `Sender` while `flag == 0`
// and read only by the unique `Receiver` while `flag == 1`; the flag's
// release/acquire pair orders the accesses, so no data race is possible.
unsafe impl Sync for Buffer {}

/// Dropped-half bits in [`Chan::closed`].
pub(crate) const TX_CLOSED: u64 = 1;
pub(crate) const RX_CLOSED: u64 = 2;

struct Chan {
    buf: CachePadded<Buffer>,
    /// Drop signal, deliberately on its own line: the hot transfer path
    /// never touches it, and the peer polls it only after a failed
    /// `try_recv`/`try_send` (the cold branch of a blocking loop).
    closed: CachePadded<AtomicU64>,
}

/// Sending half: exactly one per channel.
pub struct Sender {
    chan: Arc<Chan>,
}

/// Receiving half: exactly one per channel.
pub struct Receiver {
    chan: Arc<Chan>,
}

/// Creates a one-directional channel.
pub fn channel() -> (Sender, Receiver) {
    let chan = Arc::new(Chan {
        buf: CachePadded::new(Buffer {
            flag: AtomicU64::new(0),
            data: UnsafeCell::new([0; MSG_WORDS]),
        }),
        closed: CachePadded::new(AtomicU64::new(0)),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl Drop for Sender {
    fn drop(&mut self) {
        // Release-ordered so a receiver that sees the bit also sees any
        // message published before the drop.
        self.chan.closed.fetch_or(TX_CLOSED, Ordering::Release);
    }
}

impl Drop for Receiver {
    fn drop(&mut self) {
        self.chan.closed.fetch_or(RX_CLOSED, Ordering::Release);
    }
}

impl Sender {
    /// Sends a message, spinning (then yielding) until the buffer drains.
    pub fn send(&self, msg: Message) {
        let mut wait = SpinWait::new();
        while self.chan.buf.flag.load(Ordering::Acquire) != 0 {
            wait.snooze();
        }
        // SAFETY: the buffer is empty (flag 0) and we are the unique
        // sender, so no one else accesses `data` until we publish.
        unsafe { *self.chan.buf.data.get() = msg };
        self.chan.buf.flag.store(1, Ordering::Release);
    }

    /// Attempts to send without blocking; returns the message back if
    /// the buffer is still full.
    pub fn try_send(&self, msg: Message) -> Result<(), Message> {
        if self.chan.buf.flag.load(Ordering::Acquire) != 0 {
            return Err(msg);
        }
        // SAFETY: as in `send`.
        unsafe { *self.chan.buf.data.get() = msg };
        self.chan.buf.flag.store(1, Ordering::Release);
        Ok(())
    }

    /// True if the receiving half has been dropped: anything sent now
    /// (or still buffered) will never be read.
    pub fn receiver_closed(&self) -> bool {
        self.chan.closed.load(Ordering::Acquire) & RX_CLOSED != 0
    }
}

impl Receiver {
    /// Receives the next message, spinning (then yielding) until one
    /// arrives.
    pub fn recv(&self) -> Message {
        let mut wait = SpinWait::new();
        loop {
            match self.try_recv() {
                Some(m) => return m,
                None => wait.snooze(),
            }
        }
    }

    /// Attempts to receive without blocking.
    pub fn try_recv(&self) -> Option<Message> {
        if self.chan.buf.flag.load(Ordering::Acquire) != 1 {
            return None;
        }
        // SAFETY: the buffer is full (flag 1) and we are the unique
        // receiver; the sender will not touch `data` until we drain.
        let msg = unsafe { *self.chan.buf.data.get() };
        self.chan.buf.flag.store(0, Ordering::Release);
        Some(msg)
    }

    /// True if a message is waiting (advisory).
    pub fn has_message(&self) -> bool {
        self.chan.buf.flag.load(Ordering::Relaxed) == 1
    }

    /// True if the sending half has been dropped. A buffered message
    /// may still be waiting — drain with [`Receiver::try_recv`] before
    /// concluding the conversation is over.
    pub fn sender_closed(&self) -> bool {
        self.chan.closed.load(Ordering::Acquire) & TX_CLOSED != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel();
        tx.send([1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(rx.recv(), [1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn try_send_on_full_fails() {
        let (tx, rx) = channel();
        tx.send([9; 7]);
        assert_eq!(tx.try_send([1; 7]), Err([1; 7]));
        assert_eq!(rx.recv(), [9; 7]);
        assert_eq!(tx.try_send([1; 7]), Ok(()));
    }

    #[test]
    fn try_recv_on_empty_fails() {
        let (_tx, rx) = channel();
        assert!(rx.try_recv().is_none());
        assert!(!rx.has_message());
    }

    #[test]
    fn messages_are_fifo_across_threads() {
        let (tx, rx) = channel();
        const N: u64 = 600;
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    tx.send([i, i + 1, 0, 0, 0, 0, 0]);
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            for i in 0..N {
                let m = rx.recv();
                assert_eq!(m[0], i);
                assert_eq!(m[1], i + 1);
                if i % 64 == 0 {
                    std::thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn dropping_a_half_is_visible_to_the_peer() {
        let (tx, rx) = channel();
        assert!(!rx.sender_closed() && !tx.receiver_closed());
        // A message sent before the drop must survive the drop.
        tx.send([5; 7]);
        drop(tx);
        assert!(rx.sender_closed());
        assert_eq!(rx.try_recv(), Some([5; 7]));
        assert!(rx.try_recv().is_none());

        let (tx, rx) = channel();
        drop(rx);
        assert!(tx.receiver_closed());
    }

    #[test]
    fn ping_pong_two_channels() {
        let (tx_req, rx_req) = channel();
        let (tx_rep, rx_rep) = channel();
        std::thread::scope(|s| {
            s.spawn(move || {
                for _ in 0..200 {
                    let m = rx_req.recv();
                    tx_rep.send([m[0] + 1, 0, 0, 0, 0, 0, 0]);
                }
            });
            for i in 0..200 {
                tx_req.send([i, 0, 0, 0, 0, 0, 0]);
                assert_eq!(rx_rep.recv()[0], i + 1);
            }
        });
    }
}

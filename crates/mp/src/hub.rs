//! Client/server helpers: receive from any client or from a subset.
//!
//! `libssmp` provides server-side functions for receiving from any other
//! thread or from a chosen subset; [`ServerHub`] is the equivalent: it
//! owns one receive channel per client and scans them round-robin
//! (starting after the last served client, so no client starves). The
//! hub is generic over the channel flavour — the one-line
//! [`Receiver`] or the ring's [`crate::ring::RingReceiver`].

use std::time::Instant;

use ssync_core::SpinWait;

use crate::channel::{Message, Receiver, Sender};
use crate::ring::{RingReceiver, RingSender};

/// Why a connection-aware receive gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The sending half was dropped and the channel is fully drained:
    /// no message will ever arrive.
    Disconnected,
    /// The deadline passed with the sender still alive but silent.
    TimedOut,
}

/// The receiving half's peer was dropped (connection-aware sends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

/// The receive side a [`ServerHub`] can multiplex: anything with a
/// non-blocking poll.
pub trait MsgReceiver {
    /// Attempts to receive without blocking.
    fn try_recv(&self) -> Option<Message>;

    /// True if the sending half has been dropped (messages may still
    /// be queued — `try_recv` drains them regardless).
    fn sender_closed(&self) -> bool;

    /// Receives the next message, spinning (then yielding) until one
    /// arrives. The concrete channel types provide the same blocking
    /// loop inherently; this provided method lets transport-generic
    /// code (`ssync-srv`'s service clients) block without naming the
    /// flavour.
    fn recv(&self) -> Message {
        let mut wait = SpinWait::new();
        loop {
            match self.try_recv() {
                Some(m) => return m,
                None => wait.snooze(),
            }
        }
    }

    /// Blocking receive with an escape: fails with
    /// [`RecvError::Disconnected`] once the sender is gone *and* the
    /// channel is drained, instead of spinning forever on a dead peer.
    ///
    /// # Errors
    ///
    /// [`RecvError::Disconnected`] if the sending half was dropped and
    /// no message remains.
    fn recv_connected(&self) -> Result<Message, RecvError> {
        let mut wait = SpinWait::new();
        loop {
            if let Some(m) = self.try_recv() {
                return Ok(m);
            }
            if self.sender_closed() {
                // Final drain: the sender may have published a message
                // between the failed poll above and its drop.
                return self.try_recv().ok_or(RecvError::Disconnected);
            }
            wait.snooze();
        }
    }

    /// [`MsgReceiver::recv_connected`] with a wall-clock deadline: also
    /// fails with [`RecvError::TimedOut`] once `deadline` passes, so a
    /// caller never blocks unboundedly even on a live-but-wedged peer.
    ///
    /// # Errors
    ///
    /// [`RecvError::Disconnected`] on a dropped, drained sender;
    /// [`RecvError::TimedOut`] past the deadline.
    fn recv_connected_by(&self, deadline: Instant) -> Result<Message, RecvError> {
        let mut wait = SpinWait::new();
        loop {
            if let Some(m) = self.try_recv() {
                return Ok(m);
            }
            if self.sender_closed() {
                return self.try_recv().ok_or(RecvError::Disconnected);
            }
            if Instant::now() >= deadline {
                return self.try_recv().ok_or(RecvError::TimedOut);
            }
            wait.snooze();
        }
    }
}

impl MsgReceiver for Receiver {
    fn try_recv(&self) -> Option<Message> {
        Receiver::try_recv(self)
    }

    fn sender_closed(&self) -> bool {
        Receiver::sender_closed(self)
    }
}

impl MsgReceiver for RingReceiver {
    fn try_recv(&self) -> Option<Message> {
        RingReceiver::try_recv(self)
    }

    fn sender_closed(&self) -> bool {
        RingReceiver::sender_closed(self)
    }
}

/// The send side of either channel flavour — the mirror of
/// [`MsgReceiver`], so meshes (`ssync-srv`'s `wire_mesh_with`) can be
/// built generically over the transport.
pub trait MsgSender {
    /// Sends a message, blocking (spin then yield) while the channel
    /// is full.
    fn send(&self, msg: Message);

    /// Attempts to send without blocking; returns the message back if
    /// the channel is full.
    fn try_send(&self, msg: Message) -> Result<(), Message>;

    /// True if the receiving half has been dropped: nothing sent here
    /// will ever be read.
    fn receiver_closed(&self) -> bool;

    /// Blocking send with an escape: fails once the receiver is gone,
    /// instead of spinning forever against a full channel no one will
    /// ever drain.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the receiving half was dropped.
    fn send_connected(&self, msg: Message) -> Result<(), Disconnected> {
        let mut wait = SpinWait::new();
        let mut msg = msg;
        loop {
            if self.receiver_closed() {
                return Err(Disconnected);
            }
            match self.try_send(msg) {
                Ok(()) => return Ok(()),
                Err(back) => msg = back,
            }
            wait.snooze();
        }
    }

    /// Sends a frame sequence via [`MsgSender::send_connected`],
    /// stopping at the first failure — the bulk form migration streams
    /// use to push a value's head + continuation frames as one unit.
    ///
    /// # Errors
    ///
    /// [`Disconnected`] if the receiving half was dropped; frames
    /// before the failing one were already delivered.
    fn send_all_connected(&self, frames: &[Message]) -> Result<(), Disconnected> {
        for frame in frames {
            self.send_connected(*frame)?;
        }
        Ok(())
    }
}

impl MsgSender for Sender {
    fn send(&self, msg: Message) {
        Sender::send(self, msg)
    }

    fn try_send(&self, msg: Message) -> Result<(), Message> {
        Sender::try_send(self, msg)
    }

    fn receiver_closed(&self) -> bool {
        Sender::receiver_closed(self)
    }
}

impl MsgSender for RingSender {
    fn send(&self, msg: Message) {
        RingSender::send(self, msg)
    }

    fn try_send(&self, msg: Message) -> Result<(), Message> {
        RingSender::try_send(self, msg)
    }

    fn receiver_closed(&self) -> bool {
        RingSender::receiver_closed(self)
    }
}

/// Server-side receive multiplexer.
pub struct ServerHub<C: MsgReceiver = Receiver> {
    clients: Vec<C>,
    next: usize,
}

impl<C: MsgReceiver> ServerHub<C> {
    /// Builds a hub over one receiver per client; client ids are the
    /// indices into this vector.
    pub fn new(clients: Vec<C>) -> Self {
        Self { clients, next: 0 }
    }

    /// Number of connected clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True if the hub has no clients.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Receives the next message from any client, spinning until one
    /// arrives. Returns `(client_id, message)`.
    pub fn recv_from_any(&mut self) -> (usize, Message) {
        let mut wait = SpinWait::new();
        loop {
            if let Some(hit) = self.poll_once(None) {
                return hit;
            }
            wait.snooze();
        }
    }

    /// Non-blocking variant of [`ServerHub::recv_from_any`].
    pub fn try_recv_from_any(&mut self) -> Option<(usize, Message)> {
        self.poll_once(None)
    }

    /// Receives the next message from a client in `subset` (ids), as
    /// `libssmp`'s receive-from-subset. Spins until one arrives.
    ///
    /// # Panics
    ///
    /// Panics if `subset` contains an out-of-range client id.
    pub fn recv_from_subset(&mut self, subset: &[usize]) -> (usize, Message) {
        assert!(subset.iter().all(|&c| c < self.clients.len()));
        let mut wait = SpinWait::new();
        loop {
            if let Some(hit) = self.poll_once(Some(subset)) {
                return hit;
            }
            wait.snooze();
        }
    }

    fn poll_once(&mut self, subset: Option<&[usize]>) -> Option<(usize, Message)> {
        let n = self.clients.len();
        for k in 0..n {
            let c = (self.next + k) % n;
            if let Some(filter) = subset {
                if !filter.contains(&c) {
                    continue;
                }
            }
            if let Some(msg) = self.clients[c].try_recv() {
                self.next = (c + 1) % n;
                return Some((c, msg));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel;

    #[test]
    fn recv_from_any_round_robins() {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut hub = ServerHub::new(receivers);
        senders[0].send([0; 7]);
        senders[1].send([1; 7]);
        senders[2].send([2; 7]);
        let mut seen = Vec::new();
        for _ in 0..3 {
            let (c, m) = hub.recv_from_any();
            assert_eq!(m[0] as usize, c);
            seen.push(c);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn try_recv_empty_returns_none() {
        let (_tx, rx) = channel();
        let mut hub = ServerHub::new(vec![rx]);
        assert!(hub.try_recv_from_any().is_none());
    }

    #[test]
    fn subset_filters_clients() {
        let (tx0, rx0) = channel();
        let (tx1, rx1) = channel();
        let mut hub = ServerHub::new(vec![rx0, rx1]);
        tx0.send([10; 7]);
        tx1.send([11; 7]);
        let (c, m) = hub.recv_from_subset(&[1]);
        assert_eq!(c, 1);
        assert_eq!(m[0], 11);
        // Client 0's message is still queued.
        let (c, m) = hub.recv_from_any();
        assert_eq!(c, 0);
        assert_eq!(m[0], 10);
    }

    /// Regression test for the round-robin start-after-last-served
    /// scan: a client that always has a message ready must not starve
    /// the others. If `poll_once` restarted from index 0 instead of
    /// after the last served client, the flooder (client 0) would win
    /// every poll and take all 400 receives.
    #[test]
    fn flooding_client_cannot_starve_others() {
        const CLIENTS: usize = 4;
        const ROUNDS: u64 = 400;
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..CLIENTS {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut hub = ServerHub::new(receivers);
        let mut counts = [0u64; CLIENTS];
        for _ in 0..ROUNDS {
            // Every client (the flooder included) tops its channel up
            // before each poll, so the hub always faces a full house;
            // only the rotation decides who is served.
            for tx in &senders {
                let _ = tx.try_send([7; 7]);
            }
            let (c, _) = hub.recv_from_any();
            counts[c] += 1;
        }
        assert_eq!(
            counts,
            [ROUNDS / CLIENTS as u64; CLIENTS],
            "round-robin must serve saturated clients exactly evenly"
        );
    }

    /// The rotation also resumes after the last served client when
    /// traffic is sparse: serving client 1 must put client 2 (not 0)
    /// first in line for the next poll.
    #[test]
    fn rotation_resumes_after_last_served() {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut hub = ServerHub::new(receivers);
        senders[1].send([1; 7]);
        assert_eq!(hub.recv_from_any().0, 1);
        // Both 0 and 2 now have traffic; 2 is next in rotation order.
        senders[0].send([0; 7]);
        senders[2].send([2; 7]);
        assert_eq!(hub.recv_from_any().0, 2);
        assert_eq!(hub.recv_from_any().0, 0);
    }

    #[test]
    fn recv_connected_drains_then_reports_disconnect() {
        let (tx, rx) = crate::ring::ring_channel(4);
        tx.send([3; 7]);
        drop(tx);
        // The backlog survives the drop; only then does the error fire.
        assert_eq!(MsgReceiver::recv_connected(&rx), Ok([3; 7]));
        assert_eq!(
            MsgReceiver::recv_connected(&rx),
            Err(RecvError::Disconnected)
        );

        let (tx, rx) = channel();
        tx.send([4; 7]);
        drop(tx);
        assert_eq!(MsgReceiver::recv_connected(&rx), Ok([4; 7]));
        assert_eq!(
            MsgReceiver::recv_connected(&rx),
            Err(RecvError::Disconnected)
        );
    }

    #[test]
    fn recv_connected_by_times_out_on_a_silent_live_sender() {
        let (tx, rx) = channel();
        let deadline = Instant::now() + std::time::Duration::from_millis(5);
        assert_eq!(
            MsgReceiver::recv_connected_by(&rx, deadline),
            Err(RecvError::TimedOut)
        );
        // Sender still alive and usable afterwards.
        tx.send([8; 7]);
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        assert_eq!(MsgReceiver::recv_connected_by(&rx, deadline), Ok([8; 7]));
    }

    #[test]
    fn send_connected_fails_on_a_dropped_receiver() {
        let (tx, rx) = channel();
        assert_eq!(MsgSender::send_connected(&tx, [1; 7]), Ok(()));
        drop(rx);
        assert_eq!(MsgSender::send_connected(&tx, [2; 7]), Err(Disconnected));

        let (tx, rx) = crate::ring::ring_channel(4);
        assert_eq!(MsgSender::send_connected(&tx, [1; 7]), Ok(()));
        drop(rx);
        assert_eq!(MsgSender::send_connected(&tx, [2; 7]), Err(Disconnected));
    }

    #[test]
    fn send_all_connected_delivers_in_order_and_escapes() {
        let frames = [[1u64; 7], [2; 7], [3; 7]];
        // One-line channels hold a single frame, so the bulk send only
        // completes against a concurrent drain.
        let (tx, rx) = channel();
        std::thread::scope(|s| {
            let drained = s.spawn(move || {
                let got: Vec<Message> = (0..frames.len()).map(|_| rx.recv()).collect();
                got
            });
            assert_eq!(tx.send_all_connected(&frames), Ok(()));
            assert_eq!(drained.join().unwrap(), frames.to_vec());
        });
        // The drain thread dropped its receiver on exit.
        assert_eq!(tx.send_all_connected(&frames), Err(Disconnected));

        let (tx, rx) = crate::ring::ring_channel(8);
        assert_eq!(tx.send_all_connected(&frames), Ok(()));
        drop(rx);
        assert_eq!(tx.send_all_connected(&frames), Err(Disconnected));
    }

    #[test]
    fn threaded_clients_all_served() {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..4 {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut hub = ServerHub::new(receivers);
        std::thread::scope(|s| {
            for (i, tx) in senders.into_iter().enumerate() {
                s.spawn(move || {
                    for j in 0..200u64 {
                        tx.send([i as u64, j, 0, 0, 0, 0, 0]);
                        std::thread::yield_now();
                    }
                });
            }
            let mut counts = [0u64; 4];
            for _ in 0..800 {
                let (c, m) = hub.recv_from_any();
                assert_eq!(m[1], counts[c]);
                counts[c] += 1;
            }
            assert!(counts.iter().all(|&c| c == 200));
        });
    }
}

//! Model-checked interleavings of the replication apply path.
//!
//! Compiled only under `RUSTFLAGS='--cfg ssync_chk'`. These models
//! drive the real `KvStore::apply_replicated` (the per-key version
//! gate) from concurrent appliers — the shape of a replica receiving
//! the same shard's entries through two paths at once, e.g. a log
//! replay racing a live stream — plus the service's stream
//! high-water-mark gate, modelled with a shadow atomic exactly as
//! `service.rs` keeps it per replica.
//!
//! The third test is the *absence* proof: with the hwm gate removed,
//! the checker must find the delete-resurrection interleaving that the
//! per-key gate alone cannot block (a tombstone leaves nothing behind
//! to compare against).
//!
//! Run with:
//! `RUSTFLAGS='--cfg ssync_chk' cargo test -p ssync-repl --test chk_models`
#![cfg(ssync_chk)]

use std::sync::Arc;

use ssync_chk::sync::atomic::{AtomicU64, Ordering};
use ssync_chk::{thread, Builder};
use ssync_kv::KvStore;
use ssync_locks::TtasLock;
use ssync_repl::ClusterMap;

fn tiny_store() -> KvStore<TtasLock> {
    KvStore::new(1, 1)
}

/// Duplicate out-of-order delivery of two puts for one key: whatever
/// the interleaving, the per-key gate must leave the *newer* version's
/// value in the store, and the applied/dropped accounting must add up.
#[test]
fn per_key_gate_converges_under_out_of_order_duplicates() {
    let report = Builder::new().check(|| {
        let store = Arc::new(tiny_store());
        let replay = {
            let store = Arc::clone(&store);
            // The replay path delivers version 1 — possibly after the
            // live stream already applied version 2, and twice.
            thread::spawn(move || {
                store.apply_replicated(b"k", 1, Some(b"stale"));
                store.apply_replicated(b"k", 1, Some(b"stale"));
            })
        };
        store.apply_replicated(b"k", 2, Some(b"fresh"));
        replay.join();
        assert_eq!(
            store
                .get_with_version(b"k")
                .map(|(v, val)| (v, val.to_vec())),
            Some((2, b"fresh".to_vec())),
            "older or duplicate delivery overwrote the newer version"
        );
        let stats = store.stats_snapshot();
        assert_eq!(stats.repl_applied + stats.repl_stale_drops, 3);
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("per-key gate model: {} executions", report.executions);
}

/// The two-gate protocol of `service.rs`: every delivery first passes
/// the stream high-water mark (monotone via `fetch_max` — apply only
/// if this entry advanced it), then the store's per-key gate. A
/// duplicate put redelivered after the key's tombstone must be dropped
/// by the hwm gate in *every* interleaving: the key stays deleted.
#[test]
fn hwm_gate_blocks_delete_resurrection() {
    let report = Builder::new().check(|| {
        let store = Arc::new(tiny_store());
        let hwm = Arc::new(AtomicU64::new(0));
        let deliver =
            |store: &KvStore<TtasLock>, hwm: &AtomicU64, version: u64, value: Option<&[u8]>| {
                if hwm.fetch_max(version, Ordering::AcqRel) >= version {
                    return; // Stale or duplicate: already streamed past it.
                }
                store.apply_replicated(b"k", version, value);
            };
        deliver(&store, &hwm, 1, Some(b"v"));
        let redelivery = {
            let (store, hwm) = (Arc::clone(&store), Arc::clone(&hwm));
            // The duplicate of version 1, racing the tombstone below.
            thread::spawn(move || deliver(&store, &hwm, 1, Some(b"v")))
        };
        deliver(&store, &hwm, 2, None);
        redelivery.join();
        assert_eq!(store.get(b"k"), None, "deleted key resurrected");
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("hwm gate model: {} executions", report.executions);
}

/// Remove the hwm gate and the resurrection is real: after the
/// tombstone erased the key, the per-key gate has nothing to compare
/// the stale put against, and some interleaving re-inserts it. The
/// checker must find that interleaving — this is the false-negative
/// guard for the model above.
#[test]
fn missing_hwm_gate_resurrection_is_found() {
    let v = Builder::new().expect_violation(|| {
        let store = Arc::new(tiny_store());
        store.apply_replicated(b"k", 1, Some(b"v"));
        let redelivery = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                store.apply_replicated(b"k", 1, Some(b"v"));
            })
        };
        store.apply_replicated(b"k", 2, None);
        redelivery.join();
        assert_eq!(store.get(b"k"), None, "deleted key resurrected");
    });
    assert!(v.message.contains("resurrected"), "{v}");
    eprintln!("resurrection found in execution {}", v.execution);
}

/// A follower's full delivery pipeline for one peer frame, exactly as
/// `serve_node` orders it: the term fence first (raw-u64 compare of
/// the frame's term against the map's current word), then the stream
/// hwm gate, then the store's per-key gate. `fenced: false` models the
/// pipeline with the fence ripped out, for the violation twin below.
fn deliver_frame(
    store: &KvStore<TtasLock>,
    map: &ClusterMap,
    hwm: &AtomicU64,
    fenced: bool,
    frame_term: u64,
    version: u64,
    value: Option<&[u8]>,
) {
    // chk: raw-u64 term comparison — the one legal shape for fencing.
    if fenced && frame_term < map.view(0).term {
        return; // A dead term's frame: fenced, never applied.
    }
    if hwm.fetch_max(version, Ordering::AcqRel) >= version {
        return; // Stale or duplicate within the stream.
    }
    store.apply_replicated(b"k", version, value);
}

/// Split-brain resurrection, the case *neither* version gate can stop:
/// a deposed primary that does not know it is deposed keeps a version
/// counter that has run **ahead** of the new term's history (burned
/// CAS slots, writes it never got to replicate). Its late frame
/// carries `put k@4` while the new leader — promoted with hwm 1 —
/// overwrote `k` with a tombstone at version 3. The hwm gate passes
/// the zombie (4 > 3) and the tombstone left the per-key gate nothing
/// to compare against, so only the term fence stands: the frame's term
/// predates the map's word, and every interleaving must drop it.
#[test]
fn term_fence_blocks_a_stale_primary_resurrection() {
    let report = Builder::new().check(|| {
        let store = Arc::new(tiny_store());
        let map = Arc::new(ClusterMap::new(1, 2));
        let hwm = Arc::new(AtomicU64::new(0));
        // Term 1 history, acked everywhere: put k@1.
        deliver_frame(&store, &map, &hwm, true, 1, 1, Some(b"one"));
        map.publish_hwm(0, 1, 1);
        // The primary is deposed — node 1 promotes into term 2 — but
        // its last frame is still in flight with a counter that ran
        // ahead to version 4.
        assert!(map.report_death(0, 0));
        let term = map.try_promote(0, 1).expect("sole live candidate");
        let zombie = {
            let (store, map, hwm) = (Arc::clone(&store), Arc::clone(&map), Arc::clone(&hwm));
            thread::spawn(move || deliver_frame(&store, &map, &hwm, true, 1, 4, Some(b"zombie")))
        };
        // The new leader's term-2 history: delete k at version 3.
        deliver_frame(&store, &map, &hwm, true, term, 3, None);
        zombie.join();
        assert_eq!(store.get(b"k"), None, "stale primary resurrected the key");
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("term fence model: {} executions", report.executions);
}

/// The same schedule with the fence ripped out must contain the
/// resurrection — the zombie frame beats both version gates in every
/// order, so the checker finds the overwritten value back in the
/// store. This is the false-negative guard proving the fence (and not
/// one of the version gates) carries the property above.
#[test]
fn unfenced_stale_primary_resurrection_is_found() {
    let v = Builder::new().expect_violation(|| {
        let store = Arc::new(tiny_store());
        let map = Arc::new(ClusterMap::new(1, 2));
        let hwm = Arc::new(AtomicU64::new(0));
        deliver_frame(&store, &map, &hwm, false, 1, 1, Some(b"one"));
        map.publish_hwm(0, 1, 1);
        assert!(map.report_death(0, 0));
        let term = map.try_promote(0, 1).expect("sole live candidate");
        let zombie = {
            let (store, map, hwm) = (Arc::clone(&store), Arc::clone(&map), Arc::clone(&hwm));
            thread::spawn(move || deliver_frame(&store, &map, &hwm, false, 1, 4, Some(b"zombie")))
        };
        deliver_frame(&store, &map, &hwm, false, term, 3, None);
        zombie.join();
        assert_eq!(store.get(b"k"), None, "stale primary resurrected the key");
    });
    assert!(v.message.contains("resurrected"), "{v}");
    eprintln!("unfenced resurrection found in execution {}", v.execution);
}

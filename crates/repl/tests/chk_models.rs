//! Model-checked interleavings of the replication apply path.
//!
//! Compiled only under `RUSTFLAGS='--cfg ssync_chk'`. These models
//! drive the real `KvStore::apply_replicated` (the per-key version
//! gate) from concurrent appliers — the shape of a replica receiving
//! the same shard's entries through two paths at once, e.g. a log
//! replay racing a live stream — plus the service's stream
//! high-water-mark gate, modelled with a shadow atomic exactly as
//! `service.rs` keeps it per replica.
//!
//! The third test is the *absence* proof: with the hwm gate removed,
//! the checker must find the delete-resurrection interleaving that the
//! per-key gate alone cannot block (a tombstone leaves nothing behind
//! to compare against).
//!
//! Run with:
//! `RUSTFLAGS='--cfg ssync_chk' cargo test -p ssync-repl --test chk_models`
#![cfg(ssync_chk)]

use std::sync::Arc;

use ssync_chk::sync::atomic::{AtomicU64, Ordering};
use ssync_chk::{thread, Builder};
use ssync_kv::KvStore;
use ssync_locks::TtasLock;

fn tiny_store() -> KvStore<TtasLock> {
    KvStore::new(1, 1)
}

/// Duplicate out-of-order delivery of two puts for one key: whatever
/// the interleaving, the per-key gate must leave the *newer* version's
/// value in the store, and the applied/dropped accounting must add up.
#[test]
fn per_key_gate_converges_under_out_of_order_duplicates() {
    let report = Builder::new().check(|| {
        let store = Arc::new(tiny_store());
        let replay = {
            let store = Arc::clone(&store);
            // The replay path delivers version 1 — possibly after the
            // live stream already applied version 2, and twice.
            thread::spawn(move || {
                store.apply_replicated(b"k", 1, Some(b"stale"));
                store.apply_replicated(b"k", 1, Some(b"stale"));
            })
        };
        store.apply_replicated(b"k", 2, Some(b"fresh"));
        replay.join();
        assert_eq!(
            store
                .get_with_version(b"k")
                .map(|(v, val)| (v, val.to_vec())),
            Some((2, b"fresh".to_vec())),
            "older or duplicate delivery overwrote the newer version"
        );
        let stats = store.stats().snapshot();
        assert_eq!(stats.repl_applied + stats.repl_stale_drops, 3);
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("per-key gate model: {} executions", report.executions);
}

/// The two-gate protocol of `service.rs`: every delivery first passes
/// the stream high-water mark (monotone via `fetch_max` — apply only
/// if this entry advanced it), then the store's per-key gate. A
/// duplicate put redelivered after the key's tombstone must be dropped
/// by the hwm gate in *every* interleaving: the key stays deleted.
#[test]
fn hwm_gate_blocks_delete_resurrection() {
    let report = Builder::new().check(|| {
        let store = Arc::new(tiny_store());
        let hwm = Arc::new(AtomicU64::new(0));
        let deliver =
            |store: &KvStore<TtasLock>, hwm: &AtomicU64, version: u64, value: Option<&[u8]>| {
                if hwm.fetch_max(version, Ordering::AcqRel) >= version {
                    return; // Stale or duplicate: already streamed past it.
                }
                store.apply_replicated(b"k", version, value);
            };
        deliver(&store, &hwm, 1, Some(b"v"));
        let redelivery = {
            let (store, hwm) = (Arc::clone(&store), Arc::clone(&hwm));
            // The duplicate of version 1, racing the tombstone below.
            thread::spawn(move || deliver(&store, &hwm, 1, Some(b"v")))
        };
        deliver(&store, &hwm, 2, None);
        redelivery.join();
        assert_eq!(store.get(b"k"), None, "deleted key resurrected");
    });
    assert!(!report.truncated, "exploration truncated: {report:?}");
    eprintln!("hwm gate model: {} executions", report.executions);
}

/// Remove the hwm gate and the resurrection is real: after the
/// tombstone erased the key, the per-key gate has nothing to compare
/// the stale put against, and some interleaving re-inserts it. The
/// checker must find that interleaving — this is the false-negative
/// guard for the model above.
#[test]
fn missing_hwm_gate_resurrection_is_found() {
    let v = Builder::new().expect_violation(|| {
        let store = Arc::new(tiny_store());
        store.apply_replicated(b"k", 1, Some(b"v"));
        let redelivery = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                store.apply_replicated(b"k", 1, Some(b"v"));
            })
        };
        store.apply_replicated(b"k", 2, None);
        redelivery.join();
        assert_eq!(store.get(b"k"), None, "deleted key resurrected");
    });
    assert!(v.message.contains("resurrected"), "{v}");
    eprintln!("resurrection found in execution {}", v.execution);
}

//! The shared cluster map: per-shard term/leader words and failover
//! bookkeeping.
//!
//! This is the ROADMAP's "epoch-versioned cluster map" in its
//! in-process form: one atomic word per shard packs the current **term**
//! (epoch) with the id of the node leading it, so every party — nodes
//! deciding whether a replication frame is current, clients deciding
//! where to send a write — reads one word and compares terms on the
//! raw u64. Terms only ever grow (a 48-bit term cannot wrap in any
//! realizable run), which is what makes `>`/`>=` on the raw word the
//! whole fencing check; `ssync-lint` enforces that no term ever meets
//! wrapping arithmetic.
//!
//! Promotion is decided here, not by an election exchange: the map also
//! carries each node's **published hwm** (highest replication version
//! it has applied and acknowledged). Because acks are cumulative, the
//! published hwm understates nothing, and the live `can_lead` node with
//! the highest hwm has every acknowledged write (see DESIGN.md's
//! "Failover & term fencing") — [`ClusterMap::try_promote`] lets
//! exactly one such node CAS the shard's word from `(term, NO LEADER)`
//! to `(term + 1, itself)`. The CAS is the linearization point of the
//! failover: any frame sent under the old term is fenced by every
//! up-to-date peer from that instant on.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use ssync_core::CachePadded;

use crate::sync::atomic::{AtomicU64, Ordering};

/// Leader field value while a shard is leaderless (mid-failover).
const LEADER_NONE: u64 = 0xFFFF;

/// One shard's view of the map word: the current term and who (if
/// anyone) leads it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// The current term (starts at 1, bumped by each promotion).
    pub term: u64,
    /// The node leading that term, `None` while leaderless.
    pub leader: Option<usize>,
}

/// Timing record of one completed failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverRecord {
    /// The term the promotion opened.
    pub term: u64,
    /// The node that died leading the previous term.
    pub from: usize,
    /// The node promoted.
    pub to: usize,
    /// Death-to-promotion wall time: the write-unavailability window
    /// (reads may still be served stale by opted-in clients).
    pub unavailable: Duration,
}

struct ShardSlot {
    /// `term << 16 | leader` (leader `LEADER_NONE` while vacant). One
    /// word so view reads and promotion CASes are atomic together.
    word: CachePadded<AtomicU64>,
    /// Per-node published applied-hwm (cumulative-ack highest version).
    hwms: Vec<CachePadded<AtomicU64>>,
    /// Per-node liveness: 1 once the node died (crashed or exited).
    dead: Vec<CachePadded<AtomicU64>>,
    /// Per-node promotion eligibility (cleared for observer nodes that
    /// deliberately sit out elections, e.g. leaderless-shard tests).
    can_lead: Vec<CachePadded<AtomicU64>>,
    /// Completed failovers (monotone counter; cheap to poll).
    failovers: CachePadded<AtomicU64>,
    /// When the current leaderless spell began, plus finished records.
    timing: Mutex<ShardTiming>,
}

#[derive(Default)]
struct ShardTiming {
    crashed_at: Option<(Instant, usize)>,
    records: Vec<FailoverRecord>,
}

/// The shared map; one per [`crate::ReplCluster`], handed by `Arc` to
/// every node server and client.
pub struct ClusterMap {
    shards: Vec<ShardSlot>,
    nodes_per_shard: usize,
}

fn pack(term: u64, leader: Option<usize>) -> u64 {
    let leader = leader.map_or(LEADER_NONE, |l| l as u64);
    debug_assert!(leader <= LEADER_NONE && term < 1 << 48);
    term << 16 | leader
}

fn unpack(word: u64) -> ShardView {
    let leader = word & LEADER_NONE;
    ShardView {
        term: word >> 16,
        leader: (leader != LEADER_NONE).then_some(leader as usize),
    }
}

impl ClusterMap {
    /// A fresh map: every shard at term 1, led by node 0, all nodes
    /// live and eligible, all hwms 0.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or a shard would have 0xFFFF
    /// or more nodes (the leader field's width).
    pub fn new(shards: usize, nodes_per_shard: usize) -> ClusterMap {
        assert!(shards > 0 && nodes_per_shard > 0);
        assert!(nodes_per_shard < LEADER_NONE as usize);
        let slot = |_| ShardSlot {
            word: CachePadded::new(AtomicU64::new(pack(1, Some(0)))),
            hwms: (0..nodes_per_shard)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            dead: (0..nodes_per_shard)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            can_lead: (0..nodes_per_shard)
                .map(|_| CachePadded::new(AtomicU64::new(1)))
                .collect(),
            failovers: CachePadded::new(AtomicU64::new(0)),
            timing: Mutex::new(ShardTiming::default()),
        };
        ClusterMap {
            shards: (0..shards).map(slot).collect(),
            nodes_per_shard,
        }
    }

    /// Number of shards mapped.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Nodes per shard (the leader plus its backups).
    pub fn nodes_per_shard(&self) -> usize {
        self.nodes_per_shard
    }

    /// The shard's current term and leader, in one atomic read.
    pub fn view(&self, shard: usize) -> ShardView {
        unpack(self.shards[shard].word.load(Ordering::Acquire))
    }

    /// Publishes a node's applied hwm (monotone; `fetch_max` so stale
    /// publishes are harmless).
    pub fn publish_hwm(&self, shard: usize, node: usize, hwm: u64) {
        self.shards[shard].hwms[node].fetch_max(hwm, Ordering::Release);
    }

    /// A node's last published applied hwm.
    pub fn hwm_of(&self, shard: usize, node: usize) -> u64 {
        self.shards[shard].hwms[node].load(Ordering::Acquire)
    }

    /// Strips a node's promotion eligibility (it remains a follower and
    /// serves replica reads, but never stands for election).
    pub fn set_observer(&self, shard: usize, node: usize) {
        self.shards[shard].can_lead[node].store(0, Ordering::Release);
    }

    /// True once the node died (crash-faulted or exited).
    pub fn is_dead(&self, shard: usize, node: usize) -> bool {
        self.shards[shard].dead[node].load(Ordering::Acquire) != 0
    }

    /// Records a node's death. If it led the shard, the shard goes
    /// leaderless (same term, vacant leader) and the unavailability
    /// clock starts; returns true in that case.
    pub fn report_death(&self, shard: usize, node: usize) -> bool {
        let slot = &self.shards[shard];
        slot.dead[node].store(1, Ordering::Release);
        let word = slot.word.load(Ordering::Acquire);
        let view = unpack(word);
        if view.leader != Some(node) {
            return false;
        }
        let vacant = pack(view.term, None);
        if slot
            .word
            .compare_exchange(word, vacant, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let mut timing = slot.timing.lock().expect("cluster map poisoned");
            timing.crashed_at = Some((Instant::now(), node));
            true
        } else {
            // Lost to a concurrent transition (another death report or
            // a promotion that already superseded this leader).
            false
        }
    }

    /// Number of live, election-eligible nodes — a follower on a
    /// leaderless shard with no candidates left knows no promotion can
    /// ever come.
    pub fn live_candidates(&self, shard: usize) -> usize {
        (0..self.nodes_per_shard)
            .filter(|&n| !self.is_dead(shard, n) && self.eligible(shard, n))
            .count()
    }

    fn eligible(&self, shard: usize, node: usize) -> bool {
        self.shards[shard].can_lead[node].load(Ordering::Acquire) != 0
    }

    /// Attempts to promote `node` on a leaderless shard. Succeeds —
    /// returning the new term — only if the node is live, eligible,
    /// and *the* most caught-up candidate (highest published hwm, ties
    /// to the lowest id). The deciding CAS bumps the term and installs
    /// the node in one step, so exactly one candidate per vacancy wins
    /// and every frame of the old term is fenced from that instant.
    pub fn try_promote(&self, shard: usize, node: usize) -> Option<u64> {
        let slot = &self.shards[shard];
        let word = slot.word.load(Ordering::Acquire);
        let view = unpack(word);
        if view.leader.is_some() || self.is_dead(shard, node) || !self.eligible(shard, node) {
            return None;
        }
        // The promotion rule: highest published hwm among live eligible
        // candidates; lowest id breaks ties. Safe because acks are
        // cumulative — see DESIGN.md "Failover & term fencing".
        let my_hwm = self.hwm_of(shard, node);
        for other in 0..self.nodes_per_shard {
            if other == node || self.is_dead(shard, other) || !self.eligible(shard, other) {
                continue;
            }
            let hwm = self.hwm_of(shard, other);
            if hwm > my_hwm || (hwm == my_hwm && other < node) {
                return None;
            }
        }
        // chk: term + 1 is the one legal term mutation (48-bit terms
        // cannot wrap); everywhere else terms only meet comparisons.
        let next_term = view.term + 1;
        let next = pack(next_term, Some(node));
        if slot
            .word
            .compare_exchange(word, next, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        slot.failovers.fetch_add(1, Ordering::Relaxed);
        let mut timing = slot.timing.lock().expect("cluster map poisoned");
        let (unavailable, from) = timing
            .crashed_at
            .take()
            .map_or((Duration::ZERO, node), |(at, from)| (at.elapsed(), from));
        timing.records.push(FailoverRecord {
            term: next_term,
            from,
            to: node,
            unavailable,
        });
        Some(next_term)
    }

    /// Completed failovers on one shard.
    pub fn failovers(&self, shard: usize) -> u64 {
        self.shards[shard].failovers.load(Ordering::Relaxed)
    }

    /// Completed failovers across every shard.
    pub fn total_failovers(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.failovers(s)).sum()
    }

    /// Timing records of every completed failover on a shard.
    pub fn failover_records(&self, shard: usize) -> Vec<FailoverRecord> {
        self.shards[shard]
            .timing
            .lock()
            .expect("cluster map poisoned")
            .records
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_has_node_zero_leading_term_one() {
        let map = ClusterMap::new(2, 3);
        for shard in 0..2 {
            assert_eq!(
                map.view(shard),
                ShardView {
                    term: 1,
                    leader: Some(0)
                }
            );
            assert_eq!(map.failovers(shard), 0);
            assert_eq!(map.live_candidates(shard), 3);
        }
    }

    #[test]
    fn death_of_the_leader_vacates_and_promotion_picks_max_hwm() {
        let map = ClusterMap::new(1, 3);
        map.publish_hwm(0, 1, 5);
        map.publish_hwm(0, 2, 9);
        assert!(map.report_death(0, 0), "leader death vacates the shard");
        assert_eq!(map.view(0).leader, None);
        // Node 1 lags node 2: its bid must lose.
        assert_eq!(map.try_promote(0, 1), None);
        assert_eq!(map.try_promote(0, 2), Some(2));
        assert_eq!(
            map.view(0),
            ShardView {
                term: 2,
                leader: Some(2)
            }
        );
        assert_eq!(map.failovers(0), 1);
        let records = map.failover_records(0);
        assert_eq!(records.len(), 1);
        assert_eq!((records[0].term, records[0].from, records[0].to), (2, 0, 2));
        // A dead node's death is not a leader death; no double-vacancy.
        assert!(!map.report_death(0, 1));
        assert_eq!(map.view(0).leader, Some(2));
    }

    #[test]
    fn hwm_ties_break_to_the_lowest_id() {
        let map = ClusterMap::new(1, 3);
        map.publish_hwm(0, 1, 7);
        map.publish_hwm(0, 2, 7);
        assert!(map.report_death(0, 0));
        assert_eq!(map.try_promote(0, 2), None, "node 1 outranks the tie");
        assert_eq!(map.try_promote(0, 1), Some(2));
    }

    #[test]
    fn observers_and_the_dead_never_win() {
        let map = ClusterMap::new(1, 3);
        map.set_observer(0, 2);
        map.publish_hwm(0, 2, 100);
        assert!(map.report_death(0, 0));
        assert_eq!(map.live_candidates(0), 1);
        assert_eq!(map.try_promote(0, 2), None, "observers sit out");
        assert_eq!(map.try_promote(0, 1), Some(2), "ignoring observer hwms");
        assert!(map.report_death(0, 1));
        assert_eq!(map.live_candidates(0), 0);
        assert_eq!(map.try_promote(0, 1), None, "the dead cannot return");
    }

    #[test]
    fn promotion_on_a_led_shard_is_refused() {
        let map = ClusterMap::new(1, 2);
        assert_eq!(map.try_promote(0, 1), None);
        assert_eq!(map.view(0).term, 1);
    }
}

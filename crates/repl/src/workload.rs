//! The replicated closed-loop driver: the `ssync-srv` workload engine
//! (seeded key distributions, YCSB mixes, deterministic op streams)
//! pointed at a replication group, plus deterministic fault injection.
//!
//! Issued op counts are a pure function of `(spec, workers,
//! ops_per_worker)` exactly as in the unreplicated driver, and fault
//! schedules are a pure function of the fault seed and entry indices —
//! so a faulty run *replays*: same stalls, same crashes, same
//! catch-ups, same final convergence. Leader crashes add failovers to
//! the mix; in sync mode even the succession order replays exactly
//! (equal high-water marks make the promotion tie-break — lowest live
//! id — deterministic).

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ssync_kv::StatsSnapshot;
use ssync_locks::RawLock;
use ssync_srv::workload::{drive_worker, OpCounts, OpStream, Tally, WorkloadSpec};

use crate::fault::{FaultPlan, FaultSpec};
use crate::service::{repl_mesh, serve_node, NodeConfig, NodeReport, ReplCluster, ReplMode};

/// What a replicated workload run measured.
#[derive(Debug, Clone, Default)]
pub struct ReplReport {
    /// Operations issued, by type — deterministic per `(spec, workers,
    /// ops_per_worker)`.
    pub issued: OpCounts,
    /// Client-observed read hits.
    pub hits: u64,
    /// Client-observed read misses.
    pub misses: u64,
    /// CAS attempts that stored.
    pub cas_ok: u64,
    /// CAS attempts that lost.
    pub cas_fail: u64,
    /// Deletes that removed a key.
    pub deleted: u64,
    /// Reads answered by a follower (client-side count).
    pub replica_serves: u64,
    /// Replica reads that bounced to the leader (client-side count;
    /// load-dependent in async mode, 0 in sync mode without faults).
    pub fallbacks: u64,
    /// `WrongLeader`/`WrongTerm` bounces chased by clients.
    pub redirects: u64,
    /// Requests retried after the serving node died under them.
    pub lost_to_retry: u64,
    /// Leaderless reads served floor-free (stale-reads opt-in only).
    pub stale_served: u64,
    /// Wall time of the measure phase.
    pub wall: Duration,
    /// Node-0 (seed-leader) store counter deltas over the measure
    /// phase.
    pub primary_store: StatsSnapshot,
    /// Store counter deltas merged over every other node.
    pub replica_store: StatsSnapshot,
    /// Per-node server reports, grouped by shard (shard-major order,
    /// `shards × (replicas + 1)` entries).
    pub nodes: Vec<NodeReport>,
    /// Replication entries logged and streamed, summed over shards and
    /// successive leaders.
    pub entries: u64,
    /// Crash windows taken across all followers.
    pub crashes: u64,
    /// Stall windows taken across all followers.
    pub stalls: u64,
    /// Entries replayed from op-logs (crash catch-ups, term adoptions,
    /// promotions).
    pub from_log: u64,
    /// Stream frames fenced as stale-term leftovers (timing-dependent).
    pub fenced: u64,
    /// Promotions that happened during the run, across all shards —
    /// must equal the crash plan's total under a soak.
    pub failovers: u64,
    /// Measured per-failover unavailability windows (death report to
    /// promotion), across all shards in promotion order.
    pub unavailability: Vec<Duration>,
    /// Did every live node converge to the leader's exact contents?
    pub converged: bool,
}

impl ReplReport {
    /// Key-operations per wall-second.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        self.issued.total() as f64 / s
    }

    /// Fraction of reads that hit.
    pub fn hit_rate(&self) -> f64 {
        let reads = self.hits + self.misses;
        if reads == 0 {
            return 0.0;
        }
        self.hits as f64 / reads as f64
    }
}

/// Runs the full replicated closed-loop experiment: preload every key
/// on every node, spawn one server thread per `(shard, node)` and
/// `workers` client threads, drive `ops_per_worker` key-operations per
/// client (riding out any scheduled leader crashes via the client's
/// deadline/retry machinery), shut the groups down, and report —
/// including whether every surviving node converged and how long each
/// failover's unavailability window measured.
///
/// # Panics
///
/// Panics if `workers` is zero; if `faults` schedules backup
/// stall/crash windows in sync mode or with windows at/above the async
/// lag bound (both are deadlocks by construction: a leader blocked
/// waiting for an ack cannot deliver the entries that would close an
/// entry-indexed fault window — leader crashes carry no window and are
/// exempt); or if it schedules more leader crashes than there are
/// backups to promote.
pub fn run_replicated_closed_loop<R: RawLock + Default>(
    cluster: &mut ReplCluster<R>,
    spec: &WorkloadSpec,
    workers: usize,
    ops_per_worker: u64,
    faults: &FaultSpec,
) -> ReplReport {
    assert!(workers > 0);
    let shards = cluster.num_shards();
    let nreplicas = cluster.spec().replicas;
    let mode = cluster.spec().mode;
    if faults.has_backup_faults() {
        match mode {
            ReplMode::Sync => panic!(
                "fault injection requires async mode: a sync primary blocks on the ack a \
                 faulted backup is deliberately withholding"
            ),
            ReplMode::Async { max_lag } => assert!(
                faults.max_window < max_lag,
                "fault windows ({}) must stay below the lag bound ({max_lag}); a primary \
                 stalled on the bound cannot deliver the entries that close a window",
                faults.max_window
            ),
        }
    }
    assert!(
        faults.primary_crashes <= nreplicas,
        "at most {nreplicas} leader crashes are survivable with {nreplicas} backups \
         (each crash consumes one node from the succession line)"
    );

    // Preload: every key present everywhere, logs empty, followers at
    // the preload high-water mark.
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    for key in 0..spec.keys {
        let len = spec.vsize.sample(&mut rng);
        let value: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        cluster.preload(key, &value);
    }
    let primary_before = cluster.primary().stats_snapshot();
    let replica_before = cluster.replica_stats_snapshot();

    let map = cluster.map().clone();
    let failovers_before = map.total_failovers();
    let (node_endpoints, clients) = repl_mesh(&map, workers);

    let start = Instant::now();
    let mut nodes: Vec<NodeReport> = Vec::with_capacity(shards * (nreplicas + 1));
    let mut tallies: Vec<(Tally, [u64; 5])> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut node_handles = Vec::with_capacity(shards * (nreplicas + 1));
        for (shard, endpoints) in node_endpoints.into_iter().enumerate() {
            for endpoint in endpoints {
                let node = endpoint.node();
                let store = cluster.node_store(shard, node);
                let log = cluster.log(shard).clone();
                let map = &map;
                let cfg = NodeConfig {
                    shard,
                    mode,
                    initial_hwm: cluster.preload_hwm(shard),
                    backup_plan: if node == 0 {
                        // The seed leader never takes backup windows:
                        // schedules are keyed to *replica* slots.
                        FaultPlan::none()
                    } else {
                        faults.plan_for(shard, node - 1)
                    },
                    crash_plan: faults.primary_plan_for(shard),
                };
                node_handles.push(s.spawn(move || serve_node(store, &log, map, endpoint, cfg)));
            }
        }
        let worker_handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(worker, client)| {
                let stream = OpStream::new(spec, worker as u64);
                s.spawn(move || {
                    let tally = drive_worker(&client, stream, ops_per_worker);
                    let stats = [
                        client.replica_serves(),
                        client.fallbacks(),
                        client.redirects(),
                        client.lost_to_retry(),
                        client.stale_served(),
                    ];
                    client.close();
                    (tally, stats)
                })
            })
            .collect();
        tallies.extend(
            worker_handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked")),
        );
        nodes.extend(
            node_handles
                .into_iter()
                .map(|h| h.join().expect("node panicked")),
        );
    });
    let wall = start.elapsed();

    let mut report = ReplReport {
        wall,
        primary_store: cluster.primary().stats_snapshot().delta(&primary_before),
        replica_store: cluster.replica_stats_snapshot().delta(&replica_before),
        failovers: map.total_failovers() - failovers_before,
        unavailability: (0..shards)
            .flat_map(|sh| map.failover_records(sh))
            .map(|rec| rec.unavailable)
            .collect(),
        converged: cluster.converged(),
        ..ReplReport::default()
    };
    for (tally, [serves, fallbacks, redirects, lost, stale]) in tallies {
        report.issued = report.issued.merge(&tally.issued);
        report.hits += tally.hits;
        report.misses += tally.misses;
        report.cas_ok += tally.cas_ok;
        report.cas_fail += tally.cas_fail;
        report.deleted += tally.deleted;
        report.replica_serves += serves;
        report.fallbacks += fallbacks;
        report.redirects += redirects;
        report.lost_to_retry += lost;
        report.stale_served += stale;
    }
    for n in &nodes {
        report.entries += n.entries;
        report.crashes += n.crashes;
        report.stalls += n.stalls;
        report.from_log += n.from_log;
        report.fenced += n.fenced;
    }
    report.nodes = nodes;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ReplSpec;
    use ssync_locks::TicketLock;
    use ssync_srv::workload::{KeyDist, Mix, ValueSize};

    fn small_spec(mix: Mix) -> WorkloadSpec {
        WorkloadSpec {
            keys: 128,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix,
            vsize: ValueSize::Fixed(24),
            batch: 1,
            seed: 0xD00F,
        }
    }

    #[test]
    fn replicated_runs_replay_exactly_including_faults() {
        let faults = FaultSpec {
            seed: 77,
            faults_per_replica: 2,
            max_window: 6,
            spacing: 10,
            primary_crashes: 0,
        };
        let run = || {
            let mut cluster: ReplCluster<TicketLock> =
                ReplCluster::new(2, 64, 8, ReplSpec::async_bounded(2));
            // One worker: the op-log contents are then deterministic,
            // so entry-indexed faults replay exactly.
            run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 400, &faults)
        };
        let a = run();
        let b = run();
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.entries, b.entries);
        assert_eq!((a.crashes, a.stalls), (b.crashes, b.stalls));
        assert_eq!(a.from_log, b.from_log);
        assert!(a.converged && b.converged);
        assert!(a.crashes + a.stalls > 0, "the schedule must actually fire");
        assert_eq!(a.failovers, 0);
    }

    #[test]
    fn churn_with_faults_still_converges() {
        let faults = FaultSpec {
            seed: 3,
            faults_per_replica: 3,
            max_window: 8,
            spacing: 12,
            primary_crashes: 0,
        };
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(2, 64, 8, ReplSpec::async_bounded(2));
        let report =
            run_replicated_closed_loop(&mut cluster, &small_spec(Mix::CHURN), 1, 500, &faults);
        assert!(report.converged, "deletes + crashes must still converge");
        assert!(report.issued.deletes > 0 && report.issued.cas > 0);
    }

    #[test]
    fn sync_mode_never_bounces_a_single_clients_reads() {
        // One worker on purpose: with concurrent clients a read can
        // legitimately bounce (another client's write visible at one
        // backup before the other acked); for a single client, zero
        // fallbacks is a real sync-mode invariant.
        let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 64, 8, ReplSpec::sync(2));
        let report = run_replicated_closed_loop(
            &mut cluster,
            &small_spec(Mix::YCSB_B),
            1,
            600,
            &FaultSpec::none(),
        );
        assert_eq!(report.fallbacks, 0);
        assert!(report.replica_serves > 0);
        assert!(report.converged);
        // Preloaded keyspace, no deletes: every read hits.
        assert_eq!(report.misses, 0);
    }

    #[test]
    fn leader_crashes_fail_over_and_converge_in_sync_mode() {
        let faults = FaultSpec {
            seed: 0xC4A5,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
            primary_crashes: 2,
        };
        let run = || {
            let mut cluster: ReplCluster<TicketLock> =
                ReplCluster::new(2, 64, 8, ReplSpec::sync(2));
            run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 400, &faults)
        };
        let a = run();
        // Every shard walked its full succession line.
        assert_eq!(a.failovers, 2 * 2, "every scheduled crash must fire");
        assert_eq!(a.unavailability.len(), 4);
        assert!(a.converged, "survivors must converge after failovers");
        assert!(
            a.nodes.iter().filter(|n| n.crashed).count() == 4
                && a.nodes.iter().filter(|n| n.promotions > 0).count() == 4,
            "two leaders per shard must die and two successors must rise"
        );
        // Sync mode: equal high-water marks make the succession
        // deterministic, so a rerun replays the whole history.
        let b = run();
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.failovers, b.failovers);
        assert!(b.converged);
    }

    #[test]
    fn leader_crashes_fail_over_in_async_mode_too() {
        let faults = FaultSpec {
            seed: 0xA57C,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
            primary_crashes: 1,
        };
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(2, 64, 8, ReplSpec::async_bounded(2));
        let report =
            run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 2, 300, &faults);
        assert_eq!(report.failovers, 2, "one promotion per shard");
        assert!(report.converged);
    }

    #[test]
    #[should_panic(expected = "fault injection requires async mode")]
    fn backup_faults_in_sync_mode_are_rejected() {
        let faults = FaultSpec {
            seed: 1,
            faults_per_replica: 1,
            max_window: 4,
            spacing: 8,
            primary_crashes: 0,
        };
        let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(1));
        let _ = run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 10, &faults);
    }

    #[test]
    #[should_panic(expected = "must stay below the lag bound")]
    fn oversized_fault_windows_are_rejected() {
        let faults = FaultSpec {
            seed: 1,
            faults_per_replica: 1,
            max_window: 64,
            spacing: 8,
            primary_crashes: 0,
        };
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(1, 64, 8, ReplSpec::async_bounded(1));
        let _ = run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 10, &faults);
    }

    #[test]
    #[should_panic(expected = "succession line")]
    fn more_crashes_than_backups_are_rejected() {
        let faults = FaultSpec {
            seed: 1,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
            primary_crashes: 2,
        };
        let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(1));
        let _ = run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 10, &faults);
    }
}

//! The replicated closed-loop driver: the `ssync-srv` workload engine
//! (seeded key distributions, YCSB mixes, deterministic op streams)
//! pointed at a replication group, plus deterministic fault injection.
//!
//! Issued op counts are a pure function of `(spec, workers,
//! ops_per_worker)` exactly as in the unreplicated driver, and fault
//! schedules are a pure function of the fault seed and entry indices —
//! so a faulty run *replays*: same stalls, same crashes, same
//! catch-ups, same final convergence.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ssync_kv::StatsSnapshot;
use ssync_locks::RawLock;
use ssync_srv::workload::{drive_worker, OpCounts, OpStream, Tally, WorkloadSpec};

use crate::fault::FaultSpec;
use crate::service::{
    repl_mesh, serve_primary, serve_replica, PrimaryReport, ReplCluster, ReplMode, ReplicaReport,
};

/// What a replicated workload run measured.
#[derive(Debug, Clone, Default)]
pub struct ReplReport {
    /// Operations issued, by type — deterministic per `(spec, workers,
    /// ops_per_worker)`.
    pub issued: OpCounts,
    /// Client-observed read hits.
    pub hits: u64,
    /// Client-observed read misses.
    pub misses: u64,
    /// CAS attempts that stored.
    pub cas_ok: u64,
    /// CAS attempts that lost.
    pub cas_fail: u64,
    /// Deletes that removed a key.
    pub deleted: u64,
    /// Reads answered by a backup (client-side count).
    pub replica_serves: u64,
    /// Replica reads that bounced to the primary (client-side count;
    /// load-dependent in async mode, 0 in sync mode without faults).
    pub fallbacks: u64,
    /// Wall time of the measure phase.
    pub wall: Duration,
    /// Primary-store counter deltas over the measure phase.
    pub primary_store: StatsSnapshot,
    /// Backup-store counter deltas, merged over every backup.
    pub replica_store: StatsSnapshot,
    /// Per-shard primary server reports.
    pub primaries: Vec<PrimaryReport>,
    /// Per-`(shard, replica)` backup reports.
    pub replicas: Vec<ReplicaReport>,
    /// Replication entries logged and streamed, summed over shards.
    pub entries: u64,
    /// Crash windows taken across all backups.
    pub crashes: u64,
    /// Stall windows taken across all backups.
    pub stalls: u64,
    /// Entries replayed from op-logs during crash catch-ups.
    pub from_log: u64,
    /// Did every backup converge to its primary's exact contents?
    pub converged: bool,
}

impl ReplReport {
    /// Key-operations per wall-second.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        self.issued.total() as f64 / s
    }

    /// Fraction of reads that hit.
    pub fn hit_rate(&self) -> f64 {
        let reads = self.hits + self.misses;
        if reads == 0 {
            return 0.0;
        }
        self.hits as f64 / reads as f64
    }
}

/// Runs the full replicated closed-loop experiment: preload every key
/// on the primary *and* every backup, spawn one primary thread per
/// shard, `replicas` backup threads per shard, and `workers` client
/// threads, drive `ops_per_worker` key-operations per client, shut the
/// groups down (final-ack handshake), and report — including whether
/// every backup converged.
///
/// # Panics
///
/// Panics if `workers` is zero, or if `faults` schedules anything in
/// sync mode or with windows at/above the async lag bound (both are
/// deadlocks by construction: a primary blocked waiting for an ack
/// cannot deliver the entries that would close an entry-indexed fault
/// window).
pub fn run_replicated_closed_loop<R: RawLock + Default>(
    cluster: &mut ReplCluster<R>,
    spec: &WorkloadSpec,
    workers: usize,
    ops_per_worker: u64,
    faults: &FaultSpec,
) -> ReplReport {
    assert!(workers > 0);
    let shards = cluster.num_shards();
    let nreplicas = cluster.spec().replicas;
    let mode = cluster.spec().mode;
    if !faults.is_none() {
        match mode {
            ReplMode::Sync => panic!(
                "fault injection requires async mode: a sync primary blocks on the ack a \
                 faulted backup is deliberately withholding"
            ),
            ReplMode::Async { max_lag } => assert!(
                faults.max_window < max_lag,
                "fault windows ({}) must stay below the lag bound ({max_lag}); a primary \
                 stalled on the bound cannot deliver the entries that close a window",
                faults.max_window
            ),
        }
    }

    // Preload: every key present everywhere, logs empty, backups at
    // the preload high-water mark.
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    for key in 0..spec.keys {
        let len = spec.vsize.sample(&mut rng);
        let value: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        cluster.preload(key, &value);
    }
    let primary_before = cluster.primary().stats_snapshot();
    let replica_before = cluster.replica_stats_snapshot();

    let (primary_endpoints, replica_endpoints, clients) = repl_mesh(shards, nreplicas, workers);
    let plans: Vec<Vec<crate::fault::FaultPlan>> = (0..shards)
        .map(|s| (0..nreplicas).map(|r| faults.plan_for(s, r)).collect())
        .collect();

    let start = Instant::now();
    let mut primaries: Vec<PrimaryReport> = Vec::with_capacity(shards);
    let mut replicas: Vec<ReplicaReport> = Vec::with_capacity(shards * nreplicas);
    let mut tallies: Vec<(Tally, u64, u64)> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut primary_handles = Vec::with_capacity(shards);
        let mut replica_handles = Vec::with_capacity(shards * nreplicas);
        for (shard, endpoint) in primary_endpoints.into_iter().enumerate() {
            let store = cluster.primary().shard(shard);
            let log = cluster.log(shard).clone();
            let hwm = cluster.preload_hwm(shard);
            primary_handles.push(s.spawn(move || serve_primary(store, &log, endpoint, mode, hwm)));
        }
        for (shard, backups) in replica_endpoints.into_iter().enumerate() {
            for (r, endpoint) in backups.into_iter().enumerate() {
                let store = cluster.replica_set(r).shard(shard);
                let log = cluster.log(shard).clone();
                let hwm = cluster.preload_hwm(shard);
                let plan = plans[shard][r].clone();
                replica_handles
                    .push(s.spawn(move || serve_replica(store, &log, endpoint, &plan, hwm)));
            }
        }
        let worker_handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(worker, client)| {
                let stream = OpStream::new(spec, worker as u64);
                s.spawn(move || {
                    let tally = drive_worker(&client, stream, ops_per_worker);
                    let serves = client.replica_serves();
                    let fallbacks = client.fallbacks();
                    client.close();
                    (tally, serves, fallbacks)
                })
            })
            .collect();
        tallies.extend(
            worker_handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked")),
        );
        primaries.extend(
            primary_handles
                .into_iter()
                .map(|h| h.join().expect("primary panicked")),
        );
        replicas.extend(
            replica_handles
                .into_iter()
                .map(|h| h.join().expect("backup panicked")),
        );
    });
    let wall = start.elapsed();

    let mut report = ReplReport {
        wall,
        primary_store: cluster.primary().stats_snapshot().delta(&primary_before),
        replica_store: cluster.replica_stats_snapshot().delta(&replica_before),
        converged: cluster.converged(),
        ..ReplReport::default()
    };
    for (tally, serves, fallbacks) in tallies {
        report.issued = report.issued.merge(&tally.issued);
        report.hits += tally.hits;
        report.misses += tally.misses;
        report.cas_ok += tally.cas_ok;
        report.cas_fail += tally.cas_fail;
        report.deleted += tally.deleted;
        report.replica_serves += serves;
        report.fallbacks += fallbacks;
    }
    for p in &primaries {
        report.entries += p.entries;
    }
    for r in &replicas {
        report.crashes += r.crashes;
        report.stalls += r.stalls;
        report.from_log += r.from_log;
    }
    report.primaries = primaries;
    report.replicas = replicas;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ReplSpec;
    use ssync_locks::TicketLock;
    use ssync_srv::workload::{KeyDist, Mix, ValueSize};

    fn small_spec(mix: Mix) -> WorkloadSpec {
        WorkloadSpec {
            keys: 128,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix,
            vsize: ValueSize::Fixed(24),
            batch: 1,
            seed: 0xD00F,
        }
    }

    #[test]
    fn replicated_runs_replay_exactly_including_faults() {
        let faults = FaultSpec {
            seed: 77,
            faults_per_replica: 2,
            max_window: 6,
            spacing: 10,
        };
        let run = || {
            let mut cluster: ReplCluster<TicketLock> =
                ReplCluster::new(2, 64, 8, ReplSpec::async_bounded(2));
            // One worker: the op-log contents are then deterministic,
            // so entry-indexed faults replay exactly.
            run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 400, &faults)
        };
        let a = run();
        let b = run();
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.entries, b.entries);
        assert_eq!((a.crashes, a.stalls), (b.crashes, b.stalls));
        assert_eq!(a.from_log, b.from_log);
        assert!(a.converged && b.converged);
        assert!(a.crashes + a.stalls > 0, "the schedule must actually fire");
    }

    #[test]
    fn churn_with_faults_still_converges() {
        let faults = FaultSpec {
            seed: 3,
            faults_per_replica: 3,
            max_window: 8,
            spacing: 12,
        };
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(2, 64, 8, ReplSpec::async_bounded(2));
        let report =
            run_replicated_closed_loop(&mut cluster, &small_spec(Mix::CHURN), 1, 500, &faults);
        assert!(report.converged, "deletes + crashes must still converge");
        assert!(report.issued.deletes > 0 && report.issued.cas > 0);
    }

    #[test]
    fn sync_mode_never_bounces_a_single_clients_reads() {
        // One worker on purpose: with concurrent clients a read can
        // legitimately bounce (another client's write visible at one
        // backup before the other acked); for a single client, zero
        // fallbacks is a real sync-mode invariant.
        let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 64, 8, ReplSpec::sync(2));
        let report = run_replicated_closed_loop(
            &mut cluster,
            &small_spec(Mix::YCSB_B),
            1,
            600,
            &FaultSpec::none(),
        );
        assert_eq!(report.fallbacks, 0);
        assert!(report.replica_serves > 0);
        assert!(report.converged);
        // Preloaded keyspace, no deletes: every read hits.
        assert_eq!(report.misses, 0);
    }

    #[test]
    #[should_panic(expected = "fault injection requires async mode")]
    fn faults_in_sync_mode_are_rejected() {
        let faults = FaultSpec {
            seed: 1,
            faults_per_replica: 1,
            max_window: 4,
            spacing: 8,
        };
        let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(1));
        let _ = run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 10, &faults);
    }

    #[test]
    #[should_panic(expected = "must stay below the lag bound")]
    fn oversized_fault_windows_are_rejected() {
        let faults = FaultSpec {
            seed: 1,
            faults_per_replica: 1,
            max_window: 64,
            spacing: 8,
        };
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(1, 64, 8, ReplSpec::async_bounded(1));
        let _ = run_replicated_closed_loop(&mut cluster, &small_spec(Mix::YCSB_A), 1, 10, &faults);
    }
}

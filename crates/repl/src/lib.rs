//! # ssync-repl
//!
//! Per-shard primary/backup replication for the `ssync-srv` sharded KV
//! service — the layer where availability, consistency, and throughput
//! first trade off in this tree.
//!
//! Every shard becomes a replication group: a primary server plus R
//! backups, wired with the same one-cache-line `ssync-mp` SPSC
//! channels as the rest of the stack. The primary tags each write with
//! the version its `ssync-kv` store assigned (the CAS counter doubles
//! as the per-shard replication sequence), appends it to a bounded
//! in-memory [`log::OpLog`], and streams `Replicate` frames to the
//! backups, which apply them idempotently through a version gate.
//! Cumulative acks flow back; writes acknowledge **sync**
//! (ack-before-reply — read-your-writes from any replica) or **async**
//! (bounded lag, with stale replica reads bounced to the primary by a
//! per-shard freshness floor the client carries).
//!
//! Faults are first-class and *deterministic*: seeded stall and crash
//! windows keyed to replication entry indices replay exactly, and a
//! crashed backup catches up from the op-log before rejoining the live
//! stream — the convergence property the proptest harness checks
//! against a model on every run.
//!
//! * [`log`] — the bounded, version-ordered op-log;
//! * [`fault`] — deterministic stall/crash schedules;
//! * [`service`] — the replication mesh, primary/backup server loops,
//!   and the replica-reading [`service::ReplClient`];
//! * [`workload`] — the replicated closed-loop driver over the
//!   `ssync-srv` workload engine.
//!
//! The `repl-perf` binary in `ssync-ccbench` sweeps this subsystem
//! over {replica count × mode × skew × mix} and writes
//! `BENCH_repl.json`.
//!
//! # Examples
//!
//! ```
//! use ssync_repl::service::{repl_mesh, serve_primary, serve_replica, ReplCluster, ReplSpec};
//! use ssync_repl::fault::FaultPlan;
//! use ssync_locks::TicketLock;
//!
//! // One shard, two backups, sync mode: read-your-writes everywhere.
//! let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(2));
//! cluster.preload(7, b"seed");
//! let (mut primaries, mut backups, mut clients) = repl_mesh(1, 2, 1);
//! std::thread::scope(|s| {
//!     let spec = *cluster.spec();
//!     let primary = primaries.pop().unwrap();
//!     let log = cluster.log(0).clone();
//!     let store = cluster.primary().shard(0);
//!     let hwm = cluster.preload_hwm(0);
//!     s.spawn(move || serve_primary(store, &log, primary, spec.mode, hwm));
//!     for (r, endpoint) in backups.pop().unwrap().into_iter().enumerate() {
//!         let store = cluster.replica_set(r).shard(0);
//!         let log = cluster.log(0).clone();
//!         s.spawn(move || serve_replica(store, &log, endpoint, &FaultPlan::none(), hwm));
//!     }
//!     let client = clients.pop().unwrap();
//!     let v = client.set(7, b"fresh".to_vec()).expect("wire error");
//!     // Sync mode: this read is served by a *backup*, yet sees the write.
//!     let (version, value) = client.get(7).expect("wire error").unwrap();
//!     assert_eq!((version, value.as_slice()), (v, b"fresh".as_slice()));
//!     client.close();
//! });
//! assert!(cluster.converged());
//! ```

pub mod fault;
pub mod log;
pub mod service;
pub(crate) mod sync;
pub mod workload;

pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use log::{LogEntry, LogOp, OpLog};
pub use service::{
    repl_mesh, serve_primary, serve_replica, ReplClient, ReplCluster, ReplMode, ReplSpec,
};
pub use workload::{run_replicated_closed_loop, ReplReport};

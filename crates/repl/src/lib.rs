//! # ssync-repl
//!
//! Per-shard primary/backup replication for the `ssync-srv` sharded KV
//! service — the layer where availability, consistency, and throughput
//! first trade off in this tree.
//!
//! Every shard becomes a replication group of symmetric *nodes* — a
//! leader plus R followers, any of which may be promoted — wired with
//! the same one-cache-line `ssync-mp` SPSC channels as the rest of the
//! stack. The leader tags each write with the version its `ssync-kv`
//! store assigned (the CAS counter doubles as the per-shard
//! replication sequence), appends it to a bounded in-memory
//! [`log::OpLog`], and streams `Replicate` frames to the followers,
//! which apply them idempotently through a version gate. Cumulative
//! acks flow back; writes acknowledge **sync** (ack-before-reply —
//! read-your-writes from any replica) or **async** (bounded lag, with
//! stale replica reads bounced to the leader by a per-shard freshness
//! floor the client carries).
//!
//! Faults are first-class and *deterministic*: seeded stall and crash
//! windows keyed to replication entry indices replay exactly, and a
//! crashed backup catches up from the op-log before rejoining the live
//! stream — the convergence property the proptest harness checks
//! against a model on every run. Leaders can die too: a scheduled
//! [`fault::FaultKind::PrimaryCrash`] kills the leader of the moment
//! right after an acknowledged write, and the shard fails over — the
//! most caught-up live follower bumps the term in the shared
//! [`cluster::ClusterMap`], replays its op-log tail, and starts
//! serving, while term fencing keeps any late frame of the dead leader
//! from resurrecting overwritten state.
//!
//! * [`log`] — the bounded, version-ordered op-log;
//! * [`fault`] — deterministic stall/crash/leader-crash schedules;
//! * [`cluster`] — the shared term/leader/high-water-mark map
//!   promotions race through;
//! * [`service`] — the replication mesh, the node server loop, and the
//!   deadline-retrying, redirect-chasing [`service::ReplClient`];
//! * [`workload`] — the replicated closed-loop driver over the
//!   `ssync-srv` workload engine.
//!
//! The `repl-perf` binary in `ssync-ccbench` sweeps this subsystem
//! over {replica count × mode × skew × mix} and writes
//! `BENCH_repl.json`.
//!
//! # Examples
//!
//! ```
//! use ssync_repl::service::{repl_mesh, serve_node, NodeConfig, ReplCluster, ReplSpec};
//! use ssync_repl::fault::FaultPlan;
//! use ssync_locks::TicketLock;
//!
//! // One shard, two backups, sync mode: read-your-writes everywhere.
//! let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, ReplSpec::sync(2));
//! cluster.preload(7, b"seed");
//! let map = cluster.map().clone();
//! let (mut endpoints, mut clients) = repl_mesh(&map, 1);
//! std::thread::scope(|s| {
//!     let spec = *cluster.spec();
//!     let map = &map;
//!     for endpoint in endpoints.pop().unwrap() {
//!         let store = cluster.node_store(0, endpoint.node());
//!         let log = cluster.log(0).clone();
//!         let cfg = NodeConfig {
//!             shard: 0,
//!             mode: spec.mode,
//!             initial_hwm: cluster.preload_hwm(0),
//!             backup_plan: FaultPlan::none(),
//!             crash_plan: FaultPlan::none(),
//!         };
//!         s.spawn(move || serve_node(store, &log, map, endpoint, cfg));
//!     }
//!     let client = clients.pop().unwrap();
//!     let v = client.set(7, b"fresh".to_vec()).expect("wire error");
//!     // Sync mode: this read is served by a *follower*, yet sees the write.
//!     let (version, value) = client.get(7).expect("wire error").unwrap();
//!     assert_eq!((version, value.as_slice()), (v, b"fresh".as_slice()));
//!     client.close();
//! });
//! assert!(cluster.converged());
//! ```

pub mod cluster;
pub mod fault;
pub mod log;
pub mod service;
pub(crate) mod sync;
pub mod workload;

pub use cluster::{ClusterMap, FailoverRecord, ShardView};
pub use fault::{FaultKind, FaultPlan, FaultSpec};
pub use log::{LogEntry, LogOp, OpLog};
pub use service::{
    repl_mesh, serve_node, NodeConfig, NodeEndpoint, NodeReport, ReplClient, ReplCluster, ReplMode,
    ReplSpec,
};
pub use workload::{run_replicated_closed_loop, ReplReport};

//! Deterministic replica fault injection.
//!
//! Faults are keyed to the replication *entry index* — "when the Nth
//! entry arrives, stall (or crash) for the next W entries" — never to
//! wall time, so a seeded scenario replays exactly: the same workload
//! seed produces the same op-log, the same entry indices, and therefore
//! the same stalls, crashes, and catch-ups on every run (the
//! model-checking-replication papers' requirement, done in-process).
//!
//! * A **stall** models a slow backup: it keeps draining the stream (so
//!   the primary never blocks on a full channel) but buffers `window`
//!   entries without applying or acknowledging, then applies them all.
//! * A **crash** models a lost backup: `window` entries are received
//!   and discarded, then the backup "reboots" and catches up from the
//!   primary's op-log before resuming the live stream — any in-flight
//!   duplicates it then receives are dropped by the version gate.
//!
//! Fault windows must stay below the async mode's lag bound: a primary
//! that has stopped producing (blocked on the bound) cannot deliver the
//! entries that would end an entry-indexed window. [`FaultSpec`]
//! enforces that at plan-generation time.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What kind of outage a fault window is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Drain but neither apply nor acknowledge; apply everything when
    /// the window closes.
    Stall,
    /// Discard `window` entries, then catch up from the op-log.
    Crash,
    /// The shard *leader* dies for good right after fully acknowledging
    /// the write that produced entry `at_entry` — the worst moment for
    /// a failover protocol, since that ack is now a promise only the
    /// backups can keep. Unlike the backup kinds there is no recovery
    /// window: the node never comes back, and `window` is ignored
    /// (normalized to 1). Scheduled on whichever node leads when the
    /// entry is produced, so a plan with several crashes kills a chain
    /// of successive leaders.
    PrimaryCrash,
}

/// One fault window in a replica's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The 1-based replication entry index whose arrival opens the
    /// window (that entry is the window's first).
    pub at_entry: u64,
    /// The outage kind.
    pub kind: FaultKind,
    /// Window length in entries (≥ 1).
    pub window: u64,
}

/// A replica's full, deterministic fault schedule: non-overlapping
/// windows sorted by `at_entry`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events.
    ///
    /// # Panics
    ///
    /// Panics if events are unsorted, overlapping, zero-windowed, or
    /// start before entry 1.
    pub fn from_events(events: Vec<FaultEvent>) -> FaultPlan {
        let mut clear_from = 1;
        for ev in &events {
            assert!(ev.window >= 1, "fault window must be at least 1 entry");
            assert!(
                ev.at_entry >= clear_from,
                "fault events must be sorted and non-overlapping"
            );
            clear_from = ev.at_entry + ev.window;
        }
        FaultPlan { events }
    }

    /// Builds a leader-crash schedule: the shard's leader of the moment
    /// dies right after producing each listed (1-based, strictly
    /// increasing) entry index.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not strictly increasing or start
    /// before entry 1.
    pub fn primary_crashes(entries: Vec<u64>) -> FaultPlan {
        FaultPlan::from_events(
            entries
                .into_iter()
                .map(|at_entry| FaultEvent {
                    at_entry,
                    kind: FaultKind::PrimaryCrash,
                    window: 1,
                })
                .collect(),
        )
    }

    /// The scheduled events, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Largest window in the plan (0 if none).
    pub fn max_window(&self) -> u64 {
        self.events.iter().map(|e| e.window).max().unwrap_or(0)
    }

    /// Number of scheduled leader crashes — what the `failovers` stat
    /// must equal after a soaked run.
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == FaultKind::PrimaryCrash)
            .count()
    }
}

/// Seeded generator of per-replica fault schedules, shared by the
/// proptest harness and the `repl-perf` fault case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Master seed; each `(shard, replica)` derives its own schedule.
    pub seed: u64,
    /// Fault windows per replica schedule.
    pub faults_per_replica: usize,
    /// Largest window the generator may draw (≥ 1 when faults > 0).
    pub max_window: u64,
    /// Mean healthy gap between windows, in entries.
    pub spacing: u64,
    /// Leader crashes per shard (each kills the leader of the moment;
    /// successive crashes walk down the succession line). Scheduled on
    /// a separate seeded stream from the backup faults, so adding
    /// crashes never perturbs an existing backup schedule.
    pub primary_crashes: usize,
}

impl FaultSpec {
    /// No faults anywhere.
    pub fn none() -> FaultSpec {
        FaultSpec {
            seed: 0,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
            primary_crashes: 0,
        }
    }

    /// True if this spec schedules no faults.
    pub fn is_none(&self) -> bool {
        self.faults_per_replica == 0 && self.primary_crashes == 0
    }

    /// True if this spec schedules backup (stall/crash) windows — the
    /// kinds the async lag bound must cover.
    pub fn has_backup_faults(&self) -> bool {
        self.faults_per_replica > 0
    }

    /// The deterministic schedule for one `(shard, replica)` slot.
    /// Windows are drawn in `1..=max_window`, alternating between
    /// stalls and crashes pseudo-randomly; gaps between windows are at
    /// least one entry and average `spacing`.
    pub fn plan_for(&self, shard: usize, replica: usize) -> FaultPlan {
        if self.faults_per_replica == 0 {
            return FaultPlan::none();
        }
        assert!(self.max_window >= 1 && self.spacing >= 1);
        let stream = (shard as u64) << 32 | replica as u64;
        let mut rng = SmallRng::seed_from_u64(self.seed ^ ssync_core::mix64(stream));
        let mut events = Vec::with_capacity(self.faults_per_replica);
        let mut at = 1 + rng.gen_range(0..=self.spacing);
        for _ in 0..self.faults_per_replica {
            let window = rng.gen_range(1..=self.max_window);
            let kind = if rng.gen_range(0..2u8) == 0 {
                FaultKind::Stall
            } else {
                FaultKind::Crash
            };
            events.push(FaultEvent {
                at_entry: at,
                kind,
                window,
            });
            at += window + 1 + rng.gen_range(0..=2 * self.spacing);
        }
        FaultPlan::from_events(events)
    }

    /// The deterministic leader-crash schedule for one shard. Drawn
    /// from its own rng stream (tagged with a replica id no backup
    /// slot can use), so the backup schedules of
    /// [`FaultSpec::plan_for`] are byte-identical with crashes on or
    /// off. Crash entries are spaced like backup windows: at least two
    /// entries apart, averaging `spacing` (or a fixed gap of 8 when
    /// the spec schedules no backup faults and `spacing` is 0).
    pub fn primary_plan_for(&self, shard: usize) -> FaultPlan {
        if self.primary_crashes == 0 {
            return FaultPlan::none();
        }
        let stream = (shard as u64) << 32 | u64::from(u32::MAX);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ ssync_core::mix64(stream));
        let spacing = self.spacing.max(8);
        let mut entries = Vec::with_capacity(self.primary_crashes);
        let mut at = 1 + rng.gen_range(0..=spacing);
        for _ in 0..self.primary_crashes {
            entries.push(at);
            at += 2 + rng.gen_range(0..=2 * spacing);
        }
        FaultPlan::primary_crashes(entries)
    }

    /// The deterministic migration-stream crash schedule for one
    /// *source* shard of a resharding: the source's bulk-copy stream
    /// dies right after the listed (1-based) *sent-entry* indices, and
    /// the coordinator restarts the copy from scratch. `crashes` is an
    /// argument rather than a spec field because migrations are
    /// configured by the reshard spec, not the replica fleet — this
    /// spec only contributes the master seed and spacing, so one seed
    /// drives the whole scenario. Tagged with a replica id no backup
    /// slot or leader stream uses, so existing schedules are
    /// byte-identical with migration faults on or off.
    pub fn migration_plan_for(&self, source_shard: usize, crashes: usize) -> FaultPlan {
        if crashes == 0 {
            return FaultPlan::none();
        }
        let stream = (source_shard as u64) << 32 | u64::from(u32::MAX - 1);
        let mut rng = SmallRng::seed_from_u64(self.seed ^ ssync_core::mix64(stream));
        let spacing = self.spacing.max(8);
        let mut events = Vec::with_capacity(crashes);
        let mut at = 1 + rng.gen_range(0..=spacing);
        for _ in 0..crashes {
            events.push(FaultEvent {
                at_entry: at,
                kind: FaultKind::Crash,
                window: 1,
            });
            at += 2 + rng.gen_range(0..=2 * spacing);
        }
        FaultPlan::from_events(events)
    }

    /// The deterministic *coordinator* crash schedule of a resharding:
    /// the coordinator dies after the listed (1-based) completed
    /// migration *moves*, before the cutover publishes, and the whole
    /// migration restarts. One global stream (a migration has one
    /// coordinator, not one per shard), tagged outside the per-shard
    /// space.
    pub fn coordinator_plan_for(&self, crashes: usize) -> FaultPlan {
        if crashes == 0 {
            return FaultPlan::none();
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ ssync_core::mix64(u64::MAX));
        let mut entries = Vec::with_capacity(crashes);
        let mut at = 1 + rng.gen_range(0..=1u64);
        for _ in 0..crashes {
            entries.push(at);
            at += 2 + rng.gen_range(0..=2u64);
        }
        FaultPlan::primary_crashes(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_exactly_and_differ_per_slot() {
        let spec = FaultSpec {
            seed: 0xFA_07,
            faults_per_replica: 4,
            max_window: 8,
            spacing: 16,
            primary_crashes: 0,
        };
        let a = spec.plan_for(0, 1);
        let b = spec.plan_for(0, 1);
        assert_eq!(a, b, "same slot must replay the same schedule");
        assert_eq!(a.events().len(), 4);
        assert!(a.max_window() <= 8);
        let c = spec.plan_for(1, 1);
        assert_ne!(a, c, "different shards draw different schedules");
    }

    #[test]
    fn primary_crashes_ride_a_separate_stream() {
        let without = FaultSpec {
            seed: 0xFA_07,
            faults_per_replica: 4,
            max_window: 8,
            spacing: 16,
            primary_crashes: 0,
        };
        let with = FaultSpec {
            primary_crashes: 3,
            ..without
        };
        assert_eq!(
            without.plan_for(0, 1),
            with.plan_for(0, 1),
            "adding leader crashes must not perturb backup schedules"
        );
        assert!(without.primary_plan_for(0).is_empty());
        let plan = with.primary_plan_for(0);
        assert_eq!(plan.crash_count(), 3);
        assert_eq!(plan, with.primary_plan_for(0), "crash schedule replays");
        assert_ne!(plan, with.primary_plan_for(1));
        assert!(plan
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::PrimaryCrash && e.window == 1));
        // Crash-only specs need no backup-fault parameters at all.
        let crash_only = FaultSpec {
            seed: 1,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
            primary_crashes: 2,
        };
        assert!(!crash_only.is_none());
        assert!(!crash_only.has_backup_faults());
        assert!(crash_only.plan_for(0, 0).is_empty());
        assert_eq!(crash_only.primary_plan_for(0).crash_count(), 2);
    }

    #[test]
    fn migration_plans_ride_separate_streams() {
        let spec = FaultSpec {
            seed: 0xFA_07,
            faults_per_replica: 4,
            max_window: 8,
            spacing: 16,
            primary_crashes: 2,
        };
        // Migration faults never perturb the replica or leader streams
        // (they are derived from the same master seed on fresh tags).
        assert_eq!(spec.plan_for(0, 1), spec.plan_for(0, 1));
        let plan = spec.migration_plan_for(0, 3);
        assert_eq!(plan, spec.migration_plan_for(0, 3), "must replay");
        assert_eq!(plan.events().len(), 3);
        assert!(plan
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::Crash && e.window == 1));
        assert_ne!(plan, spec.migration_plan_for(1, 3));
        assert_ne!(plan, spec.plan_for(0, 1));
        assert!(spec.migration_plan_for(0, 0).is_empty());
        let coord = spec.coordinator_plan_for(2);
        assert_eq!(coord, spec.coordinator_plan_for(2), "must replay");
        assert_eq!(coord.crash_count(), 2);
        assert!(spec.coordinator_plan_for(0).is_empty());
        // A zero-spacing (crash-only) spec still draws valid plans.
        let bare = FaultSpec {
            seed: 9,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
            primary_crashes: 0,
        };
        assert_eq!(bare.migration_plan_for(0, 2).events().len(), 2);
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultSpec::none().plan_for(0, 0).is_empty());
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().max_window(), 0);
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn overlapping_events_rejected() {
        let _ = FaultPlan::from_events(vec![
            FaultEvent {
                at_entry: 5,
                kind: FaultKind::Stall,
                window: 4,
            },
            FaultEvent {
                at_entry: 8,
                kind: FaultKind::Crash,
                window: 2,
            },
        ]);
    }
}

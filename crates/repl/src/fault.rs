//! Deterministic replica fault injection.
//!
//! Faults are keyed to the replication *entry index* — "when the Nth
//! entry arrives, stall (or crash) for the next W entries" — never to
//! wall time, so a seeded scenario replays exactly: the same workload
//! seed produces the same op-log, the same entry indices, and therefore
//! the same stalls, crashes, and catch-ups on every run (the
//! model-checking-replication papers' requirement, done in-process).
//!
//! * A **stall** models a slow backup: it keeps draining the stream (so
//!   the primary never blocks on a full channel) but buffers `window`
//!   entries without applying or acknowledging, then applies them all.
//! * A **crash** models a lost backup: `window` entries are received
//!   and discarded, then the backup "reboots" and catches up from the
//!   primary's op-log before resuming the live stream — any in-flight
//!   duplicates it then receives are dropped by the version gate.
//!
//! Fault windows must stay below the async mode's lag bound: a primary
//! that has stopped producing (blocked on the bound) cannot deliver the
//! entries that would end an entry-indexed window. [`FaultSpec`]
//! enforces that at plan-generation time.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What kind of outage a fault window is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Drain but neither apply nor acknowledge; apply everything when
    /// the window closes.
    Stall,
    /// Discard `window` entries, then catch up from the op-log.
    Crash,
}

/// One fault window in a replica's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The 1-based replication entry index whose arrival opens the
    /// window (that entry is the window's first).
    pub at_entry: u64,
    /// The outage kind.
    pub kind: FaultKind,
    /// Window length in entries (≥ 1).
    pub window: u64,
}

/// A replica's full, deterministic fault schedule: non-overlapping
/// windows sorted by `at_entry`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from explicit events.
    ///
    /// # Panics
    ///
    /// Panics if events are unsorted, overlapping, zero-windowed, or
    /// start before entry 1.
    pub fn from_events(events: Vec<FaultEvent>) -> FaultPlan {
        let mut clear_from = 1;
        for ev in &events {
            assert!(ev.window >= 1, "fault window must be at least 1 entry");
            assert!(
                ev.at_entry >= clear_from,
                "fault events must be sorted and non-overlapping"
            );
            clear_from = ev.at_entry + ev.window;
        }
        FaultPlan { events }
    }

    /// The scheduled events, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Largest window in the plan (0 if none).
    pub fn max_window(&self) -> u64 {
        self.events.iter().map(|e| e.window).max().unwrap_or(0)
    }
}

/// Seeded generator of per-replica fault schedules, shared by the
/// proptest harness and the `repl-perf` fault case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Master seed; each `(shard, replica)` derives its own schedule.
    pub seed: u64,
    /// Fault windows per replica schedule.
    pub faults_per_replica: usize,
    /// Largest window the generator may draw (≥ 1 when faults > 0).
    pub max_window: u64,
    /// Mean healthy gap between windows, in entries.
    pub spacing: u64,
}

impl FaultSpec {
    /// No faults anywhere.
    pub fn none() -> FaultSpec {
        FaultSpec {
            seed: 0,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
        }
    }

    /// True if this spec schedules no faults.
    pub fn is_none(&self) -> bool {
        self.faults_per_replica == 0
    }

    /// The deterministic schedule for one `(shard, replica)` slot.
    /// Windows are drawn in `1..=max_window`, alternating between
    /// stalls and crashes pseudo-randomly; gaps between windows are at
    /// least one entry and average `spacing`.
    pub fn plan_for(&self, shard: usize, replica: usize) -> FaultPlan {
        if self.is_none() {
            return FaultPlan::none();
        }
        assert!(self.max_window >= 1 && self.spacing >= 1);
        let stream = (shard as u64) << 32 | replica as u64;
        let mut rng = SmallRng::seed_from_u64(self.seed ^ ssync_core::mix64(stream));
        let mut events = Vec::with_capacity(self.faults_per_replica);
        let mut at = 1 + rng.gen_range(0..=self.spacing);
        for _ in 0..self.faults_per_replica {
            let window = rng.gen_range(1..=self.max_window);
            let kind = if rng.gen_range(0..2u8) == 0 {
                FaultKind::Stall
            } else {
                FaultKind::Crash
            };
            events.push(FaultEvent {
                at_entry: at,
                kind,
                window,
            });
            at += window + 1 + rng.gen_range(0..=2 * self.spacing);
        }
        FaultPlan::from_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_exactly_and_differ_per_slot() {
        let spec = FaultSpec {
            seed: 0xFA_07,
            faults_per_replica: 4,
            max_window: 8,
            spacing: 16,
        };
        let a = spec.plan_for(0, 1);
        let b = spec.plan_for(0, 1);
        assert_eq!(a, b, "same slot must replay the same schedule");
        assert_eq!(a.events().len(), 4);
        assert!(a.max_window() <= 8);
        let c = spec.plan_for(1, 1);
        assert_ne!(a, c, "different shards draw different schedules");
    }

    #[test]
    fn none_is_empty() {
        assert!(FaultSpec::none().plan_for(0, 0).is_empty());
        assert!(FaultPlan::none().is_empty());
        assert_eq!(FaultPlan::none().max_window(), 0);
    }

    #[test]
    #[should_panic(expected = "non-overlapping")]
    fn overlapping_events_rejected() {
        let _ = FaultPlan::from_events(vec![
            FaultEvent {
                at_entry: 5,
                kind: FaultKind::Stall,
                window: 4,
            },
            FaultEvent {
                at_entry: 8,
                kind: FaultKind::Crash,
                window: 2,
            },
        ]);
    }
}

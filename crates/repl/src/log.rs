//! The primary's bounded in-memory op-log.
//!
//! Every successful write on a replicated shard appends one entry
//! before streaming to the backups; the log is what a crashed backup
//! catches up from ([`OpLog::entries_after`]). Entries are ordered by
//! the store's CAS version — the shard server serializes writes, so
//! versions are strictly increasing append to append and double as the
//! replication sequence (the paper's stance of reusing what the data
//! structure already gives you).
//!
//! The log is bounded: the primary truncates through the lowest
//! version every backup has acknowledged, and the async mode's lag
//! bound guarantees the retained window never exceeds
//! `replicas × max_lag` entries, so a well-configured log cannot
//! overflow. Overflow therefore asserts instead of silently dropping
//! unacknowledged entries a backup may still need.

use std::collections::VecDeque;
use std::sync::Mutex;

use bytes::Bytes;

/// What one replicated write did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    /// Store this value.
    Put(Bytes),
    /// Remove the key (a tombstone).
    Delete,
}

/// One replicated write: key, primary-assigned version, and the op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// The service key.
    pub key: u64,
    /// The version the primary's store assigned the write.
    pub version: u64,
    /// The operation.
    pub op: LogOp,
}

/// The bounded, version-ordered op-log. Appended and truncated by the
/// primary server thread; read concurrently by backups catching up
/// (the in-process stand-in for a log-fetch RPC).
pub struct OpLog {
    entries: Mutex<VecDeque<LogEntry>>,
    capacity: usize,
}

impl OpLog {
    /// An empty log retaining at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> OpLog {
        assert!(capacity > 0, "op-log capacity must be positive");
        OpLog {
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
        }
    }

    /// Appends one entry.
    ///
    /// # Panics
    ///
    /// Panics if the log is full (the primary's lag bound is supposed
    /// to make that impossible — losing an unacknowledged entry would
    /// silently diverge a backup) or if `entry.version` does not extend
    /// the version order.
    pub fn append(&self, entry: LogEntry) {
        let mut entries = self.entries.lock().expect("op-log poisoned");
        assert!(
            entries.len() < self.capacity,
            "op-log overflow: replication lag exceeded capacity {}",
            self.capacity
        );
        if let Some(last) = entries.back() {
            assert!(
                entry.version > last.version,
                "op-log versions must be strictly increasing ({} after {})",
                entry.version,
                last.version
            );
        }
        entries.push_back(entry);
    }

    /// Clones every retained entry with a version above `version`, in
    /// order — a backup's catch-up read.
    pub fn entries_after(&self, version: u64) -> Vec<LogEntry> {
        let entries = self.entries.lock().expect("op-log poisoned");
        let start = entries.partition_point(|e| e.version <= version);
        entries.iter().skip(start).cloned().collect()
    }

    /// How many retained entries have a version above `version` — the
    /// primary's per-backup lag measure.
    pub fn outstanding_after(&self, version: u64) -> usize {
        let entries = self.entries.lock().expect("op-log poisoned");
        entries.len() - entries.partition_point(|e| e.version <= version)
    }

    /// Drops every entry with a version at or below `version` (all
    /// backups acknowledged them).
    pub fn truncate_through(&self, version: u64) {
        let mut entries = self.entries.lock().expect("op-log poisoned");
        let keep_from = entries.partition_point(|e| e.version <= version);
        entries.drain(..keep_from);
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("op-log poisoned").len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: u64, version: u64) -> LogEntry {
        LogEntry {
            key,
            version,
            op: LogOp::Put(Bytes::copy_from_slice(&version.to_be_bytes())),
        }
    }

    #[test]
    fn append_read_truncate() {
        let log = OpLog::new(16);
        assert!(log.is_empty());
        for v in [2, 5, 9] {
            log.append(put(v, v));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.outstanding_after(0), 3);
        assert_eq!(log.outstanding_after(5), 1);
        assert_eq!(log.outstanding_after(9), 0);
        let tail = log.entries_after(2);
        assert_eq!(
            tail.iter().map(|e| e.version).collect::<Vec<_>>(),
            vec![5, 9]
        );
        log.truncate_through(5);
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries_after(0)[0].version, 9);
    }

    #[test]
    #[should_panic(expected = "op-log overflow")]
    fn overflow_asserts_rather_than_dropping() {
        let log = OpLog::new(2);
        log.append(put(1, 1));
        log.append(put(2, 2));
        log.append(put(3, 3));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_versions_rejected() {
        let log = OpLog::new(4);
        log.append(put(1, 5));
        log.append(put(2, 5));
    }
}

//! Primary/backup replication over the `ssync-srv` service, with
//! term-fenced failover.
//!
//! Each shard is a *replication group* of N = R + 1 symmetric **nodes**
//! (threads), each owning a full `KvStore` copy. At any instant exactly
//! one node — named by the shared [`ClusterMap`] word — is the
//! **leader** (applies writes, appends to the shard's bounded
//! [`OpLog`], streams `Replicate` frames); the rest are **followers**
//! (apply the stream through the version gates, serve floor-guarded
//! replica reads, return cumulative acks). All traffic rides
//! [`ssync_mp::ring_channel`] cache-line frames over a full node×node
//! mesh plus per-client connections to every node.
//!
//! **Write path.** The leader applies a write under its store's lock,
//! takes the CAS version the store assigned (the per-shard replication
//! sequence — writes are serialized by the leader thread, so versions
//! are dense and strictly increasing across *successive leaders*),
//! appends the entry to the op-log, and streams it to every live
//! follower. In [`ReplMode::Sync`] it waits for every live follower's
//! cumulative ack before replying; in [`ReplMode::Async`] it replies
//! immediately and only blocks when a follower trails by more than
//! `max_lag` log entries.
//!
//! **Failover.** A leader can be scheduled to die
//! ([`FaultKind::PrimaryCrash`](crate::fault::FaultKind)) right after
//! fully acknowledging the write that produced a given entry — the
//! worst moment, since that ack is now a promise only the followers can
//! keep. The death vacates the map word (same term, no leader); the
//! most caught-up live follower — highest *published* applied hwm, ties
//! to the lowest id, which is safe because acks are cumulative (see
//! DESIGN.md "Failover & term fencing") — wins the promotion CAS,
//! bumping the term and installing itself in one step. It replays the
//! op-log tail past its own hwm, then serves. Stream frames are fenced
//! by *channel identity against the map*: a frame from a sender the map
//! no longer names leader is counted and dropped (with a best-effort
//! `WrongTerm` back at the sender), and the gap it might have carried
//! is covered by a log replay the moment a follower adopts the new
//! term. Writes reaching a non-leader bounce with `WrongLeader`.
//!
//! **Read path.** Clients route reads round-robin across a shard's live
//! followers with a *freshness floor* (the highest version the client
//! observed on that shard); a follower behind the floor (or inside a
//! crash window) answers `Stale` and the client falls back to the
//! leader. While a shard is leaderless, writes and leader reads wait
//! under a [`RetryPacer`] deadline; a client that opted into
//! [`ReplClient::with_stale_reads`] degrades reads to floor-zero
//! replica reads instead of waiting.
//!
//! **Deadlock discipline** (rings are deeper than one frame but still
//! bounded, so the same rules apply):
//! * the leader's blocking sends to a follower are safe because a
//!   follower never blocks *on the leader or on acks*: it runs a
//!   polling loop (even a "crashed" follower keeps draining,
//!   discarding), and its only blocking sends are reply frames to a
//!   client that, having an outstanding request on that very ring, is
//!   by construction draining it;
//! * a follower acks with `try_send`, coalescing into the latest
//!   cumulative version when the ack channel is full, and retrying
//!   every loop iteration; fencing replies are `try_send` too;
//! * clients keep at most one request in flight per shard and drain
//!   shards in index order — one global order shared by every client,
//!   so the waits-for graph over bounded reply channels cannot close a
//!   cycle;
//! * every client receive and send is *connected* (`recv_connected` /
//!   `send_connected`): a dead node surfaces as
//!   [`WireError::Disconnected`] after the ring's surviving backlog is
//!   drained, never as a hang.
//!
//! Backup fault windows (stall/crash) are entry-indexed and
//! deterministic — see [`crate::fault`] — and only legal in async mode
//! with windows below the lag bound. Leader crashes are legal in both
//! modes: the failure they inject is a *death*, not a withheld ack.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use ssync_core::{ParkingWait, RegistrySnapshot, RetryPacer};
use ssync_kv::{KvStore, StatsSnapshot};
use ssync_locks::RawLock;
use ssync_mp::{
    ring_channel, Message, MsgReceiver, MsgSender, RingReceiver, RingSender, ServerHub,
};
use ssync_srv::router::{key_bytes, shard_of, ShardRouter};
use ssync_srv::service::{KvClient, ReadHit};
use ssync_srv::wire::{Request, Response, WireError, MGET_MAX, NO_LEADER, REPL_MGET_MAX};

use crate::cluster::{ClusterMap, ShardView};
use crate::fault::{FaultKind, FaultPlan};
use crate::log::{LogEntry, LogOp, OpLog};

/// When the leader replies to a replicated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplMode {
    /// Ack-before-reply: every live follower has applied the write
    /// before the client hears `Stored`. Read-your-writes from any
    /// replica, at write latency cost.
    Sync,
    /// Reply immediately; followers trail by at most `max_lag` op-log
    /// entries (the leader stalls draining acks past that). Stale
    /// replica reads fall back to the leader via the floor guard.
    Async {
        /// Maximum op-log entries a follower may trail by.
        max_lag: u64,
    },
}

/// A replication group shape: how many backups per shard, the reply
/// mode, and the op-log bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplSpec {
    /// Backups per shard (0 = plain unreplicated service). Each shard
    /// runs `replicas + 1` nodes.
    pub replicas: usize,
    /// Write acknowledgement mode.
    pub mode: ReplMode,
    /// Op-log capacity per shard, in entries.
    pub log_capacity: usize,
}

impl ReplSpec {
    /// A sync-mode spec with `replicas` backups.
    pub fn sync(replicas: usize) -> ReplSpec {
        ReplSpec {
            replicas,
            mode: ReplMode::Sync,
            log_capacity: 4096,
        }
    }

    /// An async-mode spec with `replicas` backups and the default lag
    /// bound of 64 entries.
    pub fn async_bounded(replicas: usize) -> ReplSpec {
        ReplSpec {
            replicas,
            mode: ReplMode::Async { max_lag: 64 },
            log_capacity: 4096,
        }
    }

    /// Checks internal consistency (positive capacity, lag bound below
    /// capacity).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent spec.
    pub fn validate(&self) {
        assert!(self.log_capacity > 0, "log capacity must be positive");
        if let ReplMode::Async { max_lag } = self.mode {
            assert!(max_lag >= 1, "async lag bound must be at least 1");
            assert!(
                (max_lag as usize) < self.log_capacity,
                "lag bound {max_lag} must stay below log capacity {}",
                self.log_capacity
            );
        }
    }
}

/// The stores of a replication deployment — one full shard router per
/// node (node 0 is the seed leader) — plus one op-log per shard and the
/// shared [`ClusterMap`].
pub struct ReplCluster<R: RawLock + Default> {
    primary: ShardRouter<R>,
    replica_sets: Vec<ShardRouter<R>>,
    logs: Vec<Arc<OpLog>>,
    preload_hwm: Vec<u64>,
    map: Arc<ClusterMap>,
    spec: ReplSpec,
}

impl<R: RawLock + Default> ReplCluster<R> {
    /// Builds the stores for `shards` shards of `buckets`×`stripes`
    /// each, replicated per `spec`, and a fresh map (every shard at
    /// term 1, led by node 0).
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count, invalid store geometry, or an
    /// inconsistent `spec`.
    pub fn new(shards: usize, buckets: usize, stripes: usize, spec: ReplSpec) -> Self {
        spec.validate();
        ReplCluster {
            primary: ShardRouter::new(shards, buckets, stripes),
            replica_sets: (0..spec.replicas)
                .map(|_| ShardRouter::new(shards, buckets, stripes))
                .collect(),
            logs: (0..shards)
                .map(|_| Arc::new(OpLog::new(spec.log_capacity)))
                .collect(),
            preload_hwm: vec![0; shards],
            map: Arc::new(ClusterMap::new(shards, spec.replicas + 1)),
            spec,
        }
    }

    /// The replication shape.
    pub fn spec(&self) -> &ReplSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.primary.num_shards()
    }

    /// The shared term/leader map.
    pub fn map(&self) -> &Arc<ClusterMap> {
        &self.map
    }

    /// The seed leader's router (node 0 of every shard).
    pub fn primary(&self) -> &ShardRouter<R> {
        &self.primary
    }

    /// Backup replica set `r` (a full router: its shard `s` backs the
    /// seed leader's shard `s`; it is node `r + 1` of every group).
    pub fn replica_set(&self, r: usize) -> &ShardRouter<R> {
        &self.replica_sets[r]
    }

    /// Node `node`'s store for `shard` (node 0 is the seed leader,
    /// node `n > 0` is backup set `n - 1`).
    pub fn node_store(&self, shard: usize, node: usize) -> &KvStore<R> {
        if node == 0 {
            self.primary.shard(shard)
        } else {
            self.replica_sets[node - 1].shard(shard)
        }
    }

    /// Shard `s`'s op-log.
    pub fn log(&self, s: usize) -> &Arc<OpLog> {
        &self.logs[s]
    }

    /// Seeds one key everywhere before serving starts: the seed leader
    /// assigns the version, every backup applies it, and the shard's
    /// preload high-water mark advances — so every node starts
    /// caught-up and the op-log starts empty.
    pub fn preload(&mut self, key: u64, value: &[u8]) -> u64 {
        let shard = shard_of(key, self.num_shards());
        let version = self.primary.shard(shard).set(&key_bytes(key), value);
        for set in &self.replica_sets {
            set.shard(shard)
                .apply_replicated(&key_bytes(key), version, Some(value));
        }
        self.preload_hwm[shard] = self.preload_hwm[shard].max(version);
        version
    }

    /// The post-preload high-water mark of shard `s` (every node's ack
    /// baseline).
    pub fn preload_hwm(&self, s: usize) -> u64 {
        self.preload_hwm[s]
    }

    /// True if every *live* node's every shard holds exactly the
    /// current leader's contents (keys, values, and versions). Nodes
    /// that died leading are excluded — their stores froze at death.
    /// Only meaningful once the servers have shut down (the final ack
    /// handshake guarantees followers are caught up by then). A shard
    /// with no live node left is trivially converged.
    pub fn converged(&self) -> bool {
        let nodes = self.map.nodes_per_shard();
        (0..self.num_shards()).all(|s| {
            let live = |n: &usize| !self.map.is_dead(s, *n);
            let reference = self.map.view(s).leader.or_else(|| {
                (0..nodes)
                    .filter(|n| live(n))
                    .max_by_key(|&n| self.map.hwm_of(s, n))
            });
            let Some(reference) = reference else {
                return true;
            };
            let want = self.node_store(s, reference).dump();
            (0..nodes)
                .filter(|n| live(n))
                .all(|n| self.node_store(s, n).dump() == want)
        })
    }

    /// Aggregated statistics over every backup store.
    pub fn replica_stats_snapshot(&self) -> StatsSnapshot {
        self.replica_sets
            .iter()
            .map(ShardRouter::stats_snapshot)
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s))
    }
}

/// Ring depth of client request/reply connections. A bulk reply at
/// typical value sizes (≤ ~3 frames per key × [`REPL_MGET_MAX`] keys)
/// fits without blocking the server; a worst-case reply does *not* —
/// the server then blocks mid-reply, which is still cycle-free (the
/// one client with an outstanding request on this ring is by
/// construction draining it).
const CONN_DEPTH: usize = 256;

/// Ring depth of the leader→follower replication stream: an async
/// leader can burst a lag bound's worth of entries (≈2 frames each)
/// without a scheduler handoff per entry.
const STREAM_DEPTH: usize = 256;

/// Ring depth of the follower→leader ack channel (acks coalesce, so
/// shallow is fine).
const ACK_DEPTH: usize = 8;

/// One node's side of the mesh: per-client channels plus a (stream,
/// ack) channel *pair per peer in each direction* — symmetric, because
/// any node may end up leading. Self-slots hold closed dummies so peer
/// vectors index by node id.
pub struct NodeEndpoint {
    node: usize,
    client_requests: Vec<RingReceiver>,
    client_replies: Vec<RingSender>,
    /// `peer_stream_rx[p]`: replication frames *from* node `p`.
    peer_stream_rx: Vec<RingReceiver>,
    /// `peer_stream_tx[p]`: replication frames *to* node `p`.
    peer_stream_tx: Vec<RingSender>,
    /// `peer_ack_rx[p]`: acks (and `WrongTerm` fences) *from* node `p`.
    peer_ack_rx: Vec<RingReceiver>,
    /// `peer_ack_tx[p]`: acks (and `WrongTerm` fences) *to* node `p`.
    peer_ack_tx: Vec<RingSender>,
}

impl NodeEndpoint {
    /// This endpoint's node id within its shard.
    pub fn node(&self) -> usize {
        self.node
    }
}

fn closed_tx() -> RingSender {
    ring_channel(1).0
}

fn closed_rx() -> RingReceiver {
    ring_channel(1).1
}

type Conn = (RingSender, RingReceiver);

/// One client's connections to one replication group.
struct ShardConn {
    /// A connection to every node, indexed by node id.
    nodes: Vec<Conn>,
    /// Round-robin cursor over the nodes (for follower reads).
    rr: Cell<usize>,
    /// Freshness floor: the highest version this client has observed
    /// on this shard (writes *and* reads raise it, giving
    /// read-your-writes and monotonic reads across replicas).
    floor: Cell<u64>,
    /// Cached `(term, leader)` view, refreshed from the map on
    /// redirects, disconnects, and vacancies.
    view: Cell<ShardView>,
}

/// A client of the replicated service: writes go to the shard's
/// leader (chasing `WrongLeader`/`WrongTerm` redirects and dead-node
/// disconnects under a retry deadline), reads round-robin across live
/// followers with the freshness floor as the staleness guard, falling
/// back to the leader on a `Stale` answer.
pub struct ReplClient {
    shards: Vec<ShardConn>,
    map: Arc<ClusterMap>,
    /// Per-operation retry budget; after this, calls return the last
    /// transport error (or [`WireError::Deadline`]).
    deadline: Duration,
    /// Opt-in: while a shard is leaderless, serve reads floor-free
    /// from any live node instead of waiting for a promotion.
    stale_reads: bool,
    seed: Cell<u64>,
    fallbacks: Cell<u64>,
    replica_serves: Cell<u64>,
    redirects: Cell<u64>,
    lost_to_retry: Cell<u64>,
    stale_served: Cell<u64>,
}

/// Builds the full channel mesh for a replicated deployment over
/// `map`'s shape: per shard one [`NodeEndpoint`] per node (indexed
/// `[shard][node]`), plus one [`ReplClient`] per client connected to
/// every node.
///
/// # Panics
///
/// Panics if `clients` is zero.
pub fn repl_mesh(
    map: &Arc<ClusterMap>,
    clients: usize,
) -> (Vec<Vec<NodeEndpoint>>, Vec<ReplClient>) {
    assert!(clients > 0);
    let shards = map.num_shards();
    let nodes = map.nodes_per_shard();
    let mut endpoints: Vec<Vec<NodeEndpoint>> = Vec::with_capacity(shards);
    let mut client_conns: Vec<Vec<ShardConn>> = (0..clients).map(|_| Vec::new()).collect();
    for _ in 0..shards {
        // The node×node stream/ack mesh, indexed [from][to] on the tx
        // side and [to][from] on the rx side.
        let mut stream_tx: Vec<Vec<RingSender>> = (0..nodes).map(|_| Vec::new()).collect();
        let mut stream_rx: Vec<Vec<Option<RingReceiver>>> =
            (0..nodes).map(|n| (0..n).map(|_| None).collect()).collect();
        let mut ack_tx: Vec<Vec<RingSender>> = (0..nodes).map(|_| Vec::new()).collect();
        let mut ack_rx: Vec<Vec<Option<RingReceiver>>> =
            (0..nodes).map(|n| (0..n).map(|_| None).collect()).collect();
        for to in stream_rx.iter_mut().chain(ack_rx.iter_mut()) {
            to.clear();
            to.extend((0..nodes).map(|_| None));
        }
        for a in 0..nodes {
            for b in 0..nodes {
                if a == b {
                    stream_tx[a].push(closed_tx());
                    stream_rx[b][a] = Some(closed_rx());
                    ack_tx[a].push(closed_tx());
                    ack_rx[b][a] = Some(closed_rx());
                } else {
                    let (tx, rx) = ring_channel(STREAM_DEPTH);
                    stream_tx[a].push(tx);
                    stream_rx[b][a] = Some(rx);
                    let (tx, rx) = ring_channel(ACK_DEPTH);
                    ack_tx[a].push(tx);
                    ack_rx[b][a] = Some(rx);
                }
            }
        }
        let mut shard_eps: Vec<NodeEndpoint> = Vec::with_capacity(nodes);
        for (node, (s_tx, a_tx)) in stream_tx.drain(..).zip(ack_tx.drain(..)).enumerate() {
            shard_eps.push(NodeEndpoint {
                node,
                client_requests: Vec::with_capacity(clients),
                client_replies: Vec::with_capacity(clients),
                peer_stream_rx: stream_rx[node]
                    .iter_mut()
                    .map(|r| r.take().unwrap())
                    .collect(),
                peer_stream_tx: s_tx,
                peer_ack_rx: ack_rx[node].iter_mut().map(|r| r.take().unwrap()).collect(),
                peer_ack_tx: a_tx,
            });
        }
        for conns in client_conns.iter_mut() {
            let mut node_conns = Vec::with_capacity(nodes);
            for ep in shard_eps.iter_mut() {
                let (req_tx, req_rx) = ring_channel(CONN_DEPTH);
                let (rep_tx, rep_rx) = ring_channel(CONN_DEPTH);
                ep.client_requests.push(req_rx);
                ep.client_replies.push(rep_tx);
                node_conns.push((req_tx, rep_rx));
            }
            conns.push(ShardConn {
                nodes: node_conns,
                rr: Cell::new(0),
                floor: Cell::new(0),
                view: Cell::new(ShardView {
                    term: 1,
                    leader: Some(0),
                }),
            });
        }
        endpoints.push(shard_eps);
    }
    let clients = client_conns
        .into_iter()
        .enumerate()
        .map(|(c, shards)| ReplClient {
            shards,
            map: map.clone(),
            deadline: Duration::from_secs(5),
            stale_reads: false,
            seed: Cell::new(0x5EED_0000 + c as u64),
            fallbacks: Cell::new(0),
            replica_serves: Cell::new(0),
            redirects: Cell::new(0),
            lost_to_retry: Cell::new(0),
            stale_served: Cell::new(0),
        })
        .collect();
    (endpoints, clients)
}

/// Per-node serving parameters.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Which shard's group this node belongs to.
    pub shard: usize,
    /// Write acknowledgement mode.
    pub mode: ReplMode,
    /// The shard's post-preload high-water mark
    /// ([`ReplCluster::preload_hwm`]).
    pub initial_hwm: u64,
    /// This node's deterministic stall/crash schedule as a follower.
    pub backup_plan: FaultPlan,
    /// The *shard's* leader-crash schedule: entry indices at which the
    /// leader of the moment dies. Passed to every node; consumed by
    /// whichever node is leading when the entry is produced.
    pub crash_plan: FaultPlan,
}

/// What one node did before exit — leader-side and follower-side
/// counters in one struct, since a node can play both roles across a
/// failover.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeReport {
    /// This node's id within its shard.
    pub node: usize,
    /// Client request messages served (any role).
    pub requests: u64,
    /// Key-operations executed as leader.
    pub key_ops: u64,
    /// Undecodable head frames answered with `Malformed`.
    pub malformed: u64,
    /// Replication entries this node appended and streamed as leader.
    pub entries: u64,
    /// The last version this node logged as leader (its ack target at
    /// shutdown).
    pub last_version: u64,
    /// Entries applied from the live stream as a follower.
    pub applied: u64,
    /// Entries applied from the op-log (crash catch-ups, term-adoption
    /// and promotion replays).
    pub from_log: u64,
    /// Stream entries dropped by the high-water-mark gate (in-flight
    /// duplicates of entries already replayed from the log).
    pub stale_drops: u64,
    /// Reads refused with `Stale` (client fell back to the leader).
    pub refused_reads: u64,
    /// Backup crash windows taken.
    pub crashes: u64,
    /// Backup stall windows taken.
    pub stalls: u64,
    /// Final applied high-water version (as follower).
    pub hwm: u64,
    /// Stream entry frames fenced: sent by a node the map no longer
    /// names leader. Timing-dependent (a frame races the death report),
    /// so excluded from determinism assertions.
    pub fenced: u64,
    /// Client write requests bounced with `WrongLeader`.
    pub wrong_leader: u64,
    /// Times this node won a promotion.
    pub promotions: u64,
    /// The term this node last served under.
    pub term: u64,
    /// True if this node died to a scheduled leader crash.
    pub crashed: bool,
}

fn send_all(tx: &RingSender, frames: &[Message]) {
    for &frame in frames {
        tx.send(frame);
    }
}

/// Best-effort send for node→node traffic: a dead peer's dropped
/// receiver makes this return false instead of wedging the sender.
fn send_all_connected(tx: &RingSender, frames: &[Message]) -> bool {
    for &frame in frames {
        if tx.send_connected(frame).is_err() {
            return false;
        }
    }
    true
}

fn lookup<R: RawLock + Default>(store: &KvStore<R>, key: u64) -> Response {
    match store.get_with_version(&key_bytes(key)) {
        Some((version, value)) => Response::Value {
            version,
            value: value.as_ref().to_vec(),
        },
        None => Response::Miss,
    }
}

/// What a follower can legally put on its ack channel.
enum AckMsg {
    /// Cumulative ack through this version.
    Ack(u64),
    /// Fence: the receiver's term is over. The frame carries the
    /// fencer's term, but a live leader learns terms from the map, so
    /// the value is only decoded for validation.
    WrongTerm,
}

/// Decodes an ack-channel frame. The channel is internal to the group,
/// so anything else on it is a program bug, not input.
fn ack_msg(head: Message) -> AckMsg {
    match Response::decode(head, || unreachable!("ack frames have no continuations")) {
        Ok(Response::ReplAck { version }) => AckMsg::Ack(version),
        Ok(Response::WrongTerm { .. }) => AckMsg::WrongTerm,
        other => unreachable!("follower sent {other:?} on its ack channel"),
    }
}

/// A follower's replication state machine (entry-indexed fault
/// windows).
enum BackupState {
    Healthy,
    Stalled { left: u64, buffered: Vec<LogEntry> },
    Crashed { left: u64 },
}

/// Builds the introspection payload a node returns for [`Request::Stats`]:
/// the live [`NodeReport`] counters plus the store's own statistics,
/// flattened into a [`RegistrySnapshot`]. Nodes keep no background
/// registry — the snapshot is assembled on demand, so the hot path pays
/// nothing for introspection it never asked for.
fn node_stats_payload<R: RawLock + Default>(
    store: &KvStore<R>,
    report: &NodeReport,
    leading: bool,
    term: u64,
) -> Vec<u8> {
    let mut snap = RegistrySnapshot::default();
    let s = store.stats_snapshot();
    for (name, value) in [
        ("node.requests", report.requests),
        ("node.key_ops", report.key_ops),
        ("node.malformed", report.malformed),
        ("node.entries", report.entries),
        ("node.applied", report.applied),
        ("node.from_log", report.from_log),
        ("node.stale_drops", report.stale_drops),
        ("node.refused_reads", report.refused_reads),
        ("node.hwm", report.hwm),
        ("node.wrong_leader", report.wrong_leader),
        ("node.promotions", report.promotions),
        ("node.term", term),
        ("node.leading", u64::from(leading)),
        ("store.hits", s.hits),
        ("store.misses", s.misses),
        ("store.sets", s.sets),
        ("store.deletes", s.deletes),
        ("store.cas_failures", s.cas_failures),
        ("store.repl_applied", s.repl_applied),
        ("store.repl_stale_drops", s.repl_stale_drops),
        ("store.replica_read_fallbacks", s.replica_read_fallbacks),
        ("store.epochs_advanced", s.epochs_advanced),
        ("store.nodes_reclaimed", s.nodes_reclaimed),
        ("store.reclaim_backlog", s.reclaim_backlog),
    ] {
        snap.counters.push((name.to_string(), value));
    }
    snap.to_bytes()
}

/// Runs one node of a shard's replication group until shutdown (every
/// client stopped and the group converged) or scheduled death.
///
/// The node follows the [`ClusterMap`]: while the map names it leader
/// it serves writes, streams entries, and settles acks per
/// [`ReplMode`]; otherwise it applies the current leader's stream
/// through the version gates, serves floor-guarded replica reads,
/// fences stale-term frames, and stands for promotion whenever the
/// shard goes leaderless (most-caught-up candidate wins — see
/// [`ClusterMap::try_promote`]).
pub fn serve_node<R: RawLock + Default>(
    store: &KvStore<R>,
    log: &OpLog,
    map: &ClusterMap,
    endpoint: NodeEndpoint,
    cfg: NodeConfig,
) -> NodeReport {
    let NodeEndpoint {
        node: me,
        client_requests,
        client_replies,
        peer_stream_rx,
        peer_stream_tx,
        peer_ack_rx,
        peer_ack_tx,
    } = endpoint;
    let NodeConfig {
        shard,
        mode,
        initial_hwm,
        backup_plan,
        crash_plan,
    } = cfg;
    let nodes = peer_stream_tx.len();
    let nclients = client_replies.len();
    map.publish_hwm(shard, me, initial_hwm);

    // Hub sources: 0..nclients are clients, nclients + p is peer p's
    // stream (the self slot is a closed dummy that never fires).
    let mut receivers = Vec::with_capacity(nclients + nodes);
    receivers.extend(client_requests);
    receivers.extend(peer_stream_rx);
    let mut hub = ServerHub::new(receivers);

    let mut report = NodeReport {
        node: me,
        hwm: initial_hwm,
        last_version: initial_hwm,
        term: 1,
        ..NodeReport::default()
    };
    let mut my_term = map.view(shard).term;
    let mut live_clients = nclients;
    let mut leader_done = false;
    let mut pending_ack: Option<u64> = None;
    let mut entries_seen: u64 = 0;
    let mut next_fault = 0usize;
    let mut state = BackupState::Healthy;
    // Leader bookkeeping: per-follower cumulative acks.
    let mut acked: Vec<u64> = vec![initial_hwm; nodes];
    let mut wait = ParkingWait::new();
    // Online reclamation cadence: one epoch advance-and-collect pass
    // per RECLAIM_PERIOD processed frames keeps the retired-node
    // backlog bounded while the node serves — replicated applies retire
    // displaced nodes exactly like direct writes do.
    const RECLAIM_PERIOD: u64 = 1024;
    let mut since_reclaim = 0u64;

    /// Applies one entry through the stream-order gate (the layer that
    /// blocks delete-resurrection) and the store's per-key gate.
    fn apply<R: RawLock + Default>(
        store: &KvStore<R>,
        entry: &LogEntry,
        report: &mut NodeReport,
        from_log: bool,
    ) {
        if entry.version <= report.hwm {
            report.stale_drops += 1;
            store
                .stats()
                .repl_stale_drops
                .fetch_add(1, crate::sync::atomic::Ordering::Relaxed);
            return;
        }
        let value = match &entry.op {
            LogOp::Put(value) => Some(value.as_ref()),
            LogOp::Delete => None,
        };
        store.apply_replicated(&key_bytes(entry.key), entry.version, value);
        report.hwm = entry.version;
        if from_log {
            report.from_log += 1;
        } else {
            report.applied += 1;
        }
    }

    loop {
        // ---- Role and term maintenance (one map word read). ----
        let mut view = map.view(shard);
        if view.term > my_term && view.leader != Some(me) {
            if matches!(state, BackupState::Healthy) {
                // Adopt the new term and catch up from the log: frames
                // of the old term we fenced (or never received) are
                // covered here. Mid-window, adoption waits for the
                // close, which replays the same way.
                my_term = view.term;
                report.term = my_term;
                for entry in &log.entries_after(report.hwm) {
                    apply(store, entry, &mut report, true);
                }
                map.publish_hwm(shard, me, report.hwm);
                pending_ack = Some(report.hwm);
            }
        } else if view.term > my_term {
            my_term = view.term;
            report.term = my_term;
        }
        if view.leader.is_none() {
            if let Some(term) = map.try_promote(shard, me) {
                // Promotion: close any open window, replay the log tail
                // past our hwm (everything acknowledged by anyone is in
                // there — see DESIGN.md), then lead.
                if let BackupState::Stalled { buffered, .. } =
                    std::mem::replace(&mut state, BackupState::Healthy)
                {
                    for entry in &buffered {
                        apply(store, entry, &mut report, false);
                    }
                }
                for entry in &log.entries_after(report.hwm) {
                    apply(store, entry, &mut report, true);
                }
                map.publish_hwm(shard, me, report.hwm);
                my_term = term;
                report.term = my_term;
                report.promotions += 1;
                report.last_version = report.last_version.max(report.hwm);
                for (p, slot) in acked.iter_mut().enumerate() {
                    *slot = map.hwm_of(shard, p);
                }
                pending_ack = None;
                view = ShardView {
                    term,
                    leader: Some(me),
                };
            }
        }
        let leading = view.leader == Some(me);

        // ---- Flush the coalesced cumulative ack to the leader. ----
        if !leading {
            if let (Some(version), Some(l)) = (pending_ack, view.leader) {
                let frames = Response::ReplAck { version }.encode();
                debug_assert_eq!(frames.len(), 1);
                if peer_ack_tx[l].try_send(frames[0]).is_ok() {
                    pending_ack = None;
                }
            }
        }

        // ---- Receive (or idle / exit). ----
        let (source, head) = match hub.try_recv_from_any() {
            Some(hit) => {
                wait.reset();
                hit
            }
            None => {
                if live_clients == 0 {
                    if leading {
                        break;
                    }
                    if leader_done && pending_ack.is_none() {
                        return report;
                    }
                    // A leaderless shard with no candidates left will
                    // never send the shutdown Stop; don't wait for it.
                    if view.leader.is_none() && map.live_candidates(shard) == 0 {
                        return report;
                    }
                }
                wait.snooze();
                continue;
            }
        };
        let decoded = Request::decode(head, || hub.recv_from_subset(&[source]).1);
        since_reclaim += 1;
        if since_reclaim >= RECLAIM_PERIOD {
            since_reclaim = 0;
            store.reclaim_pass();
        }

        if source >= nclients {
            // ---- A peer's replication stream. ----
            let peer = source - nclients;
            let entry = match decoded {
                Ok(Request::Replicate {
                    key,
                    version,
                    value,
                }) => LogEntry {
                    key,
                    version,
                    op: LogOp::Put(Bytes::from(value)),
                },
                Ok(Request::ReplicateDelete { key, version }) => LogEntry {
                    key,
                    version,
                    op: LogOp::Delete,
                },
                Ok(Request::Stop) => {
                    if view.leader == Some(peer) && !leading {
                        // The current leader is shutting the group
                        // down: close any open window, flush the final
                        // cumulative ack.
                        match std::mem::replace(&mut state, BackupState::Healthy) {
                            BackupState::Stalled { buffered, .. } => {
                                for entry in &buffered {
                                    apply(store, entry, &mut report, false);
                                }
                                if map.view(shard).term > my_term {
                                    for entry in &log.entries_after(report.hwm) {
                                        apply(store, entry, &mut report, true);
                                    }
                                }
                            }
                            BackupState::Crashed { .. } => {
                                for entry in &log.entries_after(report.hwm) {
                                    apply(store, entry, &mut report, true);
                                }
                            }
                            BackupState::Healthy => {}
                        }
                        map.publish_hwm(shard, me, report.hwm);
                        pending_ack = Some(report.hwm);
                        leader_done = true;
                    }
                    continue;
                }
                // The stream is internal to the group; anything else on
                // it is a bug upstream, and ignoring it beats dying.
                Ok(_) | Err(_) => continue,
            };
            // Every entry frame counts, fenced or not: each entry index
            // arrives on exactly one stream (the old leader sent its
            // entries before dying; its successor streams only later
            // ones), so fault windows stay entry-deterministic.
            entries_seen += 1;
            if matches!(state, BackupState::Healthy)
                && backup_plan
                    .events()
                    .get(next_fault)
                    .is_some_and(|ev| ev.at_entry <= entries_seen)
            {
                let event = backup_plan.events()[next_fault];
                next_fault += 1;
                state = match event.kind {
                    FaultKind::Stall => {
                        report.stalls += 1;
                        BackupState::Stalled {
                            left: event.window,
                            buffered: Vec::with_capacity(event.window as usize),
                        }
                    }
                    FaultKind::Crash => {
                        report.crashes += 1;
                        BackupState::Crashed { left: event.window }
                    }
                    // Leader crashes ride `crash_plan` and are executed
                    // by the leader itself, never by a follower window.
                    FaultKind::PrimaryCrash => BackupState::Healthy,
                };
            }
            match &mut state {
                BackupState::Healthy => {
                    if view.leader == Some(peer) && !leading {
                        apply(store, &entry, &mut report, false);
                        map.publish_hwm(shard, me, report.hwm);
                        pending_ack = Some(report.hwm);
                    } else {
                        // Term fence: the map no longer names the
                        // sender leader. Drop the frame (a log replay
                        // covers whatever it carried) and tell a
                        // still-live sender its term is over.
                        report.fenced += 1;
                        let frames = Response::WrongTerm { term: my_term }.encode();
                        let _ = peer_ack_tx[peer].try_send(frames[0]);
                    }
                }
                BackupState::Stalled { left, buffered } => {
                    buffered.push(entry);
                    *left -= 1;
                    if *left == 0 {
                        let buffered = std::mem::take(buffered);
                        for entry in &buffered {
                            apply(store, entry, &mut report, false);
                        }
                        if map.view(shard).term > my_term {
                            // A failover happened mid-window: the
                            // buffer may have gaps the fence dropped;
                            // the log has them all.
                            for entry in &log.entries_after(report.hwm) {
                                apply(store, entry, &mut report, true);
                            }
                        }
                        map.publish_hwm(shard, me, report.hwm);
                        pending_ack = Some(report.hwm);
                        state = BackupState::Healthy;
                    }
                }
                BackupState::Crashed { left } => {
                    // The entry hit the wire while we were "down":
                    // received and lost.
                    *left -= 1;
                    if *left == 0 {
                        // Reboot: replay everything missed from the
                        // op-log, then rejoin the live stream (whose
                        // in-flight duplicates the hwm gate drops).
                        for entry in &log.entries_after(report.hwm) {
                            apply(store, entry, &mut report, true);
                        }
                        map.publish_hwm(shard, me, report.hwm);
                        pending_ack = Some(report.hwm);
                        state = BackupState::Healthy;
                    }
                }
            }
            continue;
        }

        // ---- A client connection. ----
        let client = source;
        let request = match decoded {
            Ok(request) => request,
            Err(_) => {
                report.malformed += 1;
                send_all(&client_replies[client], &Response::Malformed.encode());
                continue;
            }
        };
        if matches!(request, Request::Stop) {
            live_clients -= 1;
            continue;
        }
        report.requests += 1;

        // Replica reads are served by any node; the leader is always
        // fresh enough, a follower checks its floor and window state.
        let freshness = report.hwm.max(report.last_version);
        let down = !leading && matches!(state, BackupState::Crashed { .. });
        match &request {
            Request::ReplGet { key, floor } => {
                if down || freshness < *floor {
                    report.refused_reads += 1;
                    store
                        .stats()
                        .replica_read_fallbacks
                        .fetch_add(1, crate::sync::atomic::Ordering::Relaxed);
                    send_all(
                        &client_replies[client],
                        &Response::Stale { hwm: freshness }.encode(),
                    );
                } else {
                    send_all(&client_replies[client], &lookup(store, *key).encode());
                }
                continue;
            }
            Request::ReplMultiGet { keys, floor } => {
                if down || freshness < *floor {
                    report.refused_reads += 1;
                    store
                        .stats()
                        .replica_read_fallbacks
                        .fetch_add(1, crate::sync::atomic::Ordering::Relaxed);
                    // One Stale answers the whole batch.
                    send_all(
                        &client_replies[client],
                        &Response::Stale { hwm: freshness }.encode(),
                    );
                } else {
                    for key in keys {
                        send_all(&client_replies[client], &lookup(store, *key).encode());
                    }
                }
                continue;
            }
            // Introspection is served by any node in any role — a
            // follower's queue depths and apply counters are exactly
            // what an operator scrapes during a failover.
            Request::Stats => {
                let payload = node_stats_payload(store, &report, leading, my_term);
                send_all(
                    &client_replies[client],
                    &Response::StatsReply { payload }.encode(),
                );
                continue;
            }
            // Node-to-node traffic on a client connection is a
            // protocol violation; refuse it without executing.
            Request::Replicate { .. } | Request::ReplicateDelete { .. } => {
                report.malformed += 1;
                send_all(&client_replies[client], &Response::Malformed.encode());
                continue;
            }
            _ => {}
        }
        if !leading {
            // Writes and authoritative reads belong to the leader.
            report.wrong_leader += 1;
            let leader = view.leader.map_or(NO_LEADER, |l| l as u64);
            send_all(
                &client_replies[client],
                &Response::WrongLeader {
                    term: my_term,
                    leader,
                }
                .encode(),
            );
            continue;
        }

        // ---- Leader: writes and authoritative reads. ----
        let repl = Replicator {
            log,
            map,
            shard,
            me,
            mode,
            stream_tx: &peer_stream_tx,
            ack_rx: &peer_ack_rx,
        };
        let mut crash_after = false;
        let responses: Vec<Response> = match request {
            Request::Get { key } => {
                report.key_ops += 1;
                vec![lookup(store, key)]
            }
            // The replicated service keeps its latency split at the
            // store layer (no per-node histograms), so a timed read is
            // served exactly like a plain one; the stamp still shapes
            // the client-side open-loop measurement.
            Request::TimedGet { key, .. } => {
                report.key_ops += 1;
                vec![lookup(store, key)]
            }
            Request::MultiGet { keys } => {
                report.key_ops += keys.len() as u64;
                keys.into_iter().map(|key| lookup(store, key)).collect()
            }
            Request::Set { key, value } => {
                report.key_ops += 1;
                let value = Bytes::from(value);
                let version = store.set(&key_bytes(key), value.clone());
                repl.replicate(
                    LogEntry {
                        key,
                        version,
                        op: LogOp::Put(value),
                    },
                    &mut acked,
                    &mut report,
                );
                crash_after = crash_scheduled(&crash_plan, version - initial_hwm);
                vec![Response::Stored { version }]
            }
            Request::Cas {
                key,
                expected,
                value,
            } => {
                report.key_ops += 1;
                let value = Bytes::from(value);
                match store.cas(&key_bytes(key), value.clone(), expected) {
                    Ok(version) => {
                        repl.replicate(
                            LogEntry {
                                key,
                                version,
                                op: LogOp::Put(value),
                            },
                            &mut acked,
                            &mut report,
                        );
                        crash_after = crash_scheduled(&crash_plan, version - initial_hwm);
                        vec![Response::Stored { version }]
                    }
                    Err(current) => vec![Response::CasFail { current }],
                }
            }
            Request::Delete { key } => {
                report.key_ops += 1;
                match store.delete_versioned(&key_bytes(key)) {
                    Some(version) => {
                        repl.replicate(
                            LogEntry {
                                key,
                                version,
                                op: LogOp::Delete,
                            },
                            &mut acked,
                            &mut report,
                        );
                        crash_after = crash_scheduled(&crash_plan, version - initial_hwm);
                        vec![Response::Deleted { version }]
                    }
                    None => vec![Response::NotFound],
                }
            }
            Request::ReplGet { .. }
            | Request::ReplMultiGet { .. }
            | Request::Replicate { .. }
            | Request::ReplicateDelete { .. }
            | Request::Stats
            | Request::Stop => unreachable!("handled before the leader match"),
        };
        for response in responses {
            send_all(&client_replies[client], &response.encode());
        }
        if crash_after {
            // The scheduled death: the write above is fully
            // acknowledged and replied to — from here on only the
            // followers can keep that promise. Mark the map (vacating
            // the shard) and drop the endpoint; queued requests die
            // with us and surface client-side as `Disconnected`.
            report.crashed = true;
            report.term = my_term;
            map.report_death(shard, me);
            return report;
        }
    }

    // ---- Leader shutdown handshake. ----
    // Stream Stop, then wait until every live follower's cumulative
    // ack reaches the last logged version — the group is converged
    // when this returns.
    let stop = Request::Stop.encode();
    for (p, tx) in peer_stream_tx.iter().enumerate() {
        if p != me && !map.is_dead(shard, p) {
            send_all_connected(tx, &stop);
        }
    }
    for (p, rx) in peer_ack_rx.iter().enumerate() {
        if p == me || map.is_dead(shard, p) {
            continue;
        }
        while acked[p] < report.last_version {
            match rx.recv_connected() {
                Ok(head) => {
                    if let AckMsg::Ack(v) = ack_msg(head) {
                        acked[p] = acked[p].max(v);
                    }
                }
                Err(_) => break,
            }
        }
    }
    report.term = my_term;
    report
}

/// True if the shard's crash schedule kills the leader right after the
/// write that produced this entry index.
fn crash_scheduled(plan: &FaultPlan, entry_index: u64) -> bool {
    plan.events()
        .iter()
        .any(|ev| ev.kind == FaultKind::PrimaryCrash && ev.at_entry == entry_index)
}

/// The leader's streaming side, bundled so the write arms share one
/// call.
struct Replicator<'a> {
    log: &'a OpLog,
    map: &'a ClusterMap,
    shard: usize,
    me: usize,
    mode: ReplMode,
    stream_tx: &'a [RingSender],
    ack_rx: &'a [RingReceiver],
}

impl Replicator<'_> {
    /// Streams one logged write to every live follower and settles
    /// acks per the mode's contract.
    fn replicate(&self, entry: LogEntry, acked: &mut [u64], report: &mut NodeReport) {
        let nodes = self.stream_tx.len();
        let live: Vec<usize> = (0..nodes)
            .filter(|&p| p != self.me && !self.map.is_dead(self.shard, p))
            .collect();
        if live.is_empty() {
            // No follower left (every backup died leading, or an
            // unreplicated shard): nothing to log — no one will ever
            // ack, so nothing could ever be truncated — or stream.
            report.last_version = entry.version;
            return;
        }
        let request = match &entry.op {
            LogOp::Put(value) => Request::Replicate {
                key: entry.key,
                version: entry.version,
                value: value.as_ref().to_vec(),
            },
            LogOp::Delete => Request::ReplicateDelete {
                key: entry.key,
                version: entry.version,
            },
        };
        let version = entry.version;
        self.log.append(entry);
        report.entries += 1;
        report.last_version = version;
        let frames = request.encode();
        for &p in &live {
            send_all_connected(&self.stream_tx[p], &frames);
        }
        match self.mode {
            ReplMode::Sync => {
                for &p in &live {
                    while acked[p] < version {
                        match self.ack_rx[p].recv_connected() {
                            Ok(head) => {
                                if let AckMsg::Ack(v) = ack_msg(head) {
                                    acked[p] = acked[p].max(v);
                                }
                            }
                            Err(_) => break,
                        }
                    }
                }
            }
            ReplMode::Async { max_lag } => {
                for &p in &live {
                    while let Some(head) = self.ack_rx[p].try_recv() {
                        if let AckMsg::Ack(v) = ack_msg(head) {
                            acked[p] = acked[p].max(v);
                        }
                    }
                    while self.log.outstanding_after(acked[p]) as u64 > max_lag {
                        match self.ack_rx[p].recv_connected() {
                            Ok(head) => {
                                if let AckMsg::Ack(v) = ack_msg(head) {
                                    acked[p] = acked[p].max(v);
                                }
                            }
                            Err(_) => break,
                        }
                    }
                }
            }
        }
        if let Some(min_acked) = live.iter().map(|&p| acked[p]).min() {
            self.log.truncate_through(min_acked);
        }
    }
}

/// Sends every frame of an encoded request, failing fast if the server
/// side is gone instead of spinning on a channel no one drains.
fn send_frames(conn: &Conn, frames: &[Message]) -> bool {
    frames.iter().all(|&m| conn.0.send_connected(m).is_ok())
}

/// Where one shard's chunk of a batched read went.
enum MgetTarget<'a> {
    /// Pipelined to a live follower as a floor-guarded `ReplMultiGet`.
    Follower(usize, &'a [usize]),
    /// Pipelined to the leader as an authoritative `MultiGet`.
    Leader(usize, &'a [usize]),
    /// Not sent (leaderless, oversized for one `MultiGet`, or the
    /// target died under the send) — fetched afterwards through the
    /// retrying leader path.
    Deferred(&'a [usize]),
}

impl ReplClient {
    /// Number of shards (replication groups) this client reaches.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Replaces the per-operation retry budget (default five seconds).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> ReplClient {
        self.deadline = deadline;
        self
    }

    /// Opts into floor-free replica reads while a shard is leaderless:
    /// `get` then serves possibly-stale data from any live node
    /// instead of waiting out the promotion.
    #[must_use]
    pub fn with_stale_reads(mut self) -> ReplClient {
        self.stale_reads = true;
        self
    }

    /// Reads answered by a follower so far.
    pub fn replica_serves(&self) -> u64 {
        self.replica_serves.get()
    }

    /// Replica reads that bounced to the leader so far.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.get()
    }

    /// `WrongLeader`/`WrongTerm` bounces chased so far.
    pub fn redirects(&self) -> u64 {
        self.redirects.get()
    }

    /// Requests retried because the serving node died under them (the
    /// request was provably never executed — see the module doc).
    pub fn lost_to_retry(&self) -> u64 {
        self.lost_to_retry.get()
    }

    /// Reads served floor-free from a follower while leaderless (only
    /// ever nonzero after [`ReplClient::with_stale_reads`]).
    pub fn stale_served(&self) -> u64 {
        self.stale_served.get()
    }

    fn observe(&self, shard: usize, version: u64) {
        let floor = &self.shards[shard].floor;
        floor.set(floor.get().max(version));
    }

    fn next_seed(&self) -> u64 {
        let s = self.seed.get();
        self.seed.set(s.wrapping_add(0x9E37_79B9_7F4A_7C15));
        s
    }

    fn pacer(&self) -> RetryPacer {
        RetryPacer::new(self.deadline, self.next_seed())
    }

    /// The cached `(term, leader)` view, consulting the shared map
    /// whenever the cache says "vacant" (promotions only ever move the
    /// view forward, so a cached leader is worth trying first).
    fn shard_view(&self, shard: usize) -> ShardView {
        let cached = self.shards[shard].view.get();
        if cached.leader.is_some() {
            return cached;
        }
        self.refresh_view(shard)
    }

    /// Re-reads the shared map, keeping whichever view has the higher
    /// term (a redirect can be fresher than the map read that raced it).
    fn refresh_view(&self, shard: usize) -> ShardView {
        let fresh = self.map.view(shard);
        let cell = &self.shards[shard].view;
        if fresh.term >= cell.get().term {
            cell.set(fresh);
        }
        cell.get()
    }

    /// Adopts a server-supplied redirect if it is not older than the
    /// cached view.
    fn note_redirect(&self, shard: usize, term: u64, leader: Option<usize>) {
        self.redirects.set(self.redirects.get() + 1);
        let cell = &self.shards[shard].view;
        if term >= cell.get().term {
            cell.set(ShardView { term, leader });
        }
        if cell.get().leader.is_none() {
            self.refresh_view(shard);
        }
    }

    /// Round-robin pick of a live non-leader node, if any.
    fn pick_follower(&self, shard: usize, leader: usize) -> Option<usize> {
        let conn = &self.shards[shard];
        let n = conn.nodes.len();
        let start = conn.rr.get();
        conn.rr.set(start.wrapping_add(1));
        (0..n)
            .map(|i| (start + i) % n)
            .find(|&node| node != leader && !self.map.is_dead(shard, node))
    }

    /// Round-robin pick of any live node (stale-read path).
    fn any_live(&self, shard: usize) -> Option<usize> {
        let conn = &self.shards[shard];
        let n = conn.nodes.len();
        let start = conn.rr.get();
        conn.rr.set(start.wrapping_add(1));
        (0..n)
            .map(|i| (start + i) % n)
            .find(|&node| !self.map.is_dead(shard, node))
    }

    /// Reads one response, surfacing a dead server as
    /// [`WireError::Disconnected`] instead of spinning. Only the head
    /// frame needs the connected check: servers emit whole responses
    /// between requests, so once a head is readable its continuation
    /// frames are already in the ring.
    fn read_response_connected(conn: &Conn) -> Result<Response, WireError> {
        let head = conn
            .1
            .recv_connected()
            .map_err(|_| WireError::Disconnected)?;
        Response::decode(head, || conn.1.recv())
    }

    /// One request/response exchange against one node, disconnect-aware
    /// on both legs.
    fn roundtrip(conn: &Conn, request: &Request) -> Result<Response, WireError> {
        if !send_frames(conn, &request.encode()) {
            return Err(WireError::Disconnected);
        }
        Self::read_response_connected(conn)
    }

    /// Scrapes the live introspection snapshot of one specific node of
    /// `shard` — any role, no leader chase. Followers answer too, so a
    /// scrape observes a failover instead of being stalled by one.
    pub fn stats_of(&self, shard: usize, node: usize) -> Result<RegistrySnapshot, WireError> {
        match Self::roundtrip(&self.shards[shard].nodes[node], &Request::Stats)? {
            Response::StatsReply { payload } => {
                RegistrySnapshot::from_bytes(&payload).ok_or(WireError::UnexpectedResponse("Stats"))
            }
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Stats")),
        }
    }

    /// The retrying leader exchange every write (and authoritative
    /// read) goes through: chases `WrongLeader`/`WrongTerm` redirects,
    /// waits out leaderless spells with jittered backoff, and retries
    /// requests a dying node provably never executed — all under the
    /// client's deadline.
    ///
    /// Retrying on [`WireError::Disconnected`] is exactly-once, not
    /// at-least-once: a node sends the complete response *before* a
    /// scheduled crash takes it down, responses survive in the reply
    /// ring after death, and `recv_connected` drains that backlog
    /// before reporting the disconnect. `Disconnected` therefore
    /// proves the request still sat unread in the dead node's inbox.
    fn exchange_at_leader(&self, shard: usize, request: &Request) -> Result<Response, WireError> {
        let mut pacer = self.pacer();
        let mut last_err = None;
        loop {
            let view = self.shard_view(shard);
            let Some(leader) = view.leader else {
                if !pacer.pause() {
                    return Err(last_err.unwrap_or(WireError::Deadline));
                }
                self.refresh_view(shard);
                continue;
            };
            let conn = &self.shards[shard].nodes[leader];
            match Self::roundtrip(conn, request) {
                Err(WireError::Disconnected) => {
                    self.lost_to_retry.set(self.lost_to_retry.get() + 1);
                    last_err = Some(WireError::Disconnected);
                    self.shards[shard].view.set(ShardView {
                        term: view.term,
                        leader: None,
                    });
                    if !pacer.pause() {
                        return Err(WireError::Disconnected);
                    }
                    self.refresh_view(shard);
                }
                Err(e) => return Err(e),
                Ok(Response::WrongLeader { term, leader }) => {
                    let leader = usize::try_from(leader).ok().filter(|_| leader != NO_LEADER);
                    self.note_redirect(shard, term, leader);
                    if pacer.expired() {
                        return Err(last_err.unwrap_or(WireError::Deadline));
                    }
                }
                Ok(Response::WrongTerm { term }) => {
                    self.note_redirect(shard, term, None);
                    if pacer.expired() {
                        return Err(last_err.unwrap_or(WireError::Deadline));
                    }
                }
                Ok(response) => return Ok(response),
            }
        }
    }

    /// Looks a key up, preferring a follower: round-robin over the
    /// shard's live non-leaders with the freshness floor attached,
    /// falling back to the leader when the pick is behind or down.
    /// While the shard is leaderless, either waits under the deadline
    /// or (with [`ReplClient::with_stale_reads`]) serves floor-free
    /// from any live node.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply, a
    /// peer dead past the retry budget, or [`WireError::Deadline`].
    pub fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        let shard = shard_of(key, self.shards.len());
        let conn = &self.shards[shard];
        let mut pacer = self.pacer();
        let mut last_err = None;
        loop {
            let view = self.shard_view(shard);
            let Some(leader) = view.leader else {
                if self.stale_reads {
                    if let Some(node) = self.any_live(shard) {
                        let request = Request::ReplGet { key, floor: 0 };
                        match Self::roundtrip(&conn.nodes[node], &request) {
                            Ok(Response::Value { version, value }) => {
                                self.stale_served.set(self.stale_served.get() + 1);
                                return Ok(Some((version, value)));
                            }
                            Ok(Response::Miss) => {
                                self.stale_served.set(self.stale_served.get() + 1);
                                return Ok(None);
                            }
                            // A node refusing inside its own crash
                            // window answers `Stale` even floor-free;
                            // rotate on.
                            Ok(Response::Stale { .. }) => {}
                            Ok(Response::Malformed) => return Err(WireError::Rejected),
                            Ok(_) => return Err(WireError::UnexpectedResponse("ReplGet")),
                            Err(WireError::Disconnected) => {
                                last_err = Some(WireError::Disconnected);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                if !pacer.pause() {
                    return Err(last_err.unwrap_or(WireError::Deadline));
                }
                self.refresh_view(shard);
                continue;
            };
            if let Some(follower) = self.pick_follower(shard, leader) {
                let request = Request::ReplGet {
                    key,
                    floor: conn.floor.get(),
                };
                match Self::roundtrip(&conn.nodes[follower], &request) {
                    Ok(Response::Value { version, value }) => {
                        self.replica_serves.set(self.replica_serves.get() + 1);
                        self.observe(shard, version);
                        return Ok(Some((version, value)));
                    }
                    Ok(Response::Miss) => {
                        self.replica_serves.set(self.replica_serves.get() + 1);
                        return Ok(None);
                    }
                    Ok(Response::Stale { .. }) => {
                        self.fallbacks.set(self.fallbacks.get() + 1);
                    }
                    Ok(Response::Malformed) => return Err(WireError::Rejected),
                    Ok(_) => return Err(WireError::UnexpectedResponse("ReplGet")),
                    Err(WireError::Disconnected) => {
                        // Follower gone (it was leading and died, or is
                        // shutting down): refresh and retry the loop.
                        last_err = Some(WireError::Disconnected);
                        self.refresh_view(shard);
                        if !pacer.pause() {
                            return Err(WireError::Disconnected);
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            match self.exchange_at_leader(shard, &Request::Get { key }) {
                Ok(Response::Value { version, value }) => {
                    self.observe(shard, version);
                    return Ok(Some((version, value)));
                }
                Ok(Response::Miss) => return Ok(None),
                Ok(Response::Malformed) => return Err(WireError::Rejected),
                Ok(_) => return Err(WireError::UnexpectedResponse("Get")),
                Err(e @ (WireError::Disconnected | WireError::Deadline)) if self.stale_reads => {
                    // The authoritative path is gone; loop back so the
                    // leaderless branch can serve the read floor-free.
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Batched lookup. Each shard's chunk goes out as *one* wide,
    /// floor-guarded [`Request::ReplMultiGet`] per round to a
    /// round-robin-chosen live follower — one server visit bulk-reads
    /// the whole shard's share. Shards proceed concurrently (one
    /// in-flight request per shard, drained in shard order — the
    /// shared global order that keeps the waits-for graph over the
    /// reply rings acyclic); stale, redirected, disconnected, or
    /// leaderless chunks re-fetch through the retrying leader path in
    /// [`MGET_MAX`]-sized slices. Results come back in input order.
    ///
    /// # Errors
    ///
    /// [`WireError`] on the first undecodable or out-of-protocol
    /// reply, or when a chunk's retries exhaust the deadline.
    pub fn get_many(&self, keys: &[u64]) -> Result<Vec<ReadHit>, WireError> {
        let nshards = self.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        for (pos, &key) in keys.iter().enumerate() {
            by_shard[shard_of(key, nshards)].push(pos);
        }
        let many_nodes = self.map.nodes_per_shard() > 1;
        let chunk_size = if many_nodes { REPL_MGET_MAX } else { MGET_MAX };
        let mut results: Vec<Option<(u64, Vec<u8>)>> = (0..keys.len()).map(|_| None).collect();
        let rounds = by_shard
            .iter()
            .map(|positions| positions.len().div_ceil(chunk_size))
            .max()
            .unwrap_or(0);
        for round in 0..rounds {
            // Send phase: pipeline one chunk per shard.
            let mut inflight: Vec<(usize, MgetTarget)> = Vec::new();
            for (shard, positions) in by_shard.iter().enumerate() {
                let conn = &self.shards[shard];
                let chunk = positions.chunks(chunk_size).nth(round).unwrap_or(&[]);
                if chunk.is_empty() {
                    continue;
                }
                let batch: Vec<u64> = chunk.iter().map(|&p| keys[p]).collect();
                let view = self.shard_view(shard);
                let target = match view.leader {
                    None => MgetTarget::Deferred(chunk),
                    Some(leader) => match self.pick_follower(shard, leader) {
                        Some(f) => {
                            let request = Request::ReplMultiGet {
                                keys: batch,
                                floor: conn.floor.get(),
                            };
                            if send_frames(&conn.nodes[f], &request.encode()) {
                                MgetTarget::Follower(f, chunk)
                            } else {
                                MgetTarget::Deferred(chunk)
                            }
                        }
                        // All followers dead: the leader path chunks
                        // by MGET_MAX, so only small chunks pipeline.
                        None if chunk.len() <= MGET_MAX => {
                            let request = Request::MultiGet { keys: batch };
                            if send_frames(&conn.nodes[leader], &request.encode()) {
                                MgetTarget::Leader(leader, chunk)
                            } else {
                                MgetTarget::Deferred(chunk)
                            }
                        }
                        None => MgetTarget::Deferred(chunk),
                    },
                };
                inflight.push((shard, target));
            }
            // Drain phase, in shard order. The first response answers
            // for the whole chunk: a node emits `Stale`, `WrongLeader`,
            // or `WrongTerm` as one response per *request*, and a node
            // that answered the head at all has already queued the
            // rest (responses are emitted between requests).
            let mut deferred: Vec<(usize, Vec<usize>)> = Vec::new();
            for (shard, target) in inflight {
                let conn = &self.shards[shard];
                match target {
                    MgetTarget::Deferred(chunk) => deferred.push((shard, chunk.to_vec())),
                    MgetTarget::Leader(node, chunk) => {
                        match Self::read_response_connected(&conn.nodes[node]) {
                            Err(WireError::Disconnected) => {
                                self.lost_to_retry.set(self.lost_to_retry.get() + 1);
                                self.refresh_view(shard);
                                deferred.push((shard, chunk.to_vec()));
                            }
                            Err(e) => return Err(e),
                            Ok(Response::WrongLeader { term, leader }) => {
                                let leader =
                                    usize::try_from(leader).ok().filter(|_| leader != NO_LEADER);
                                self.note_redirect(shard, term, leader);
                                deferred.push((shard, chunk.to_vec()));
                            }
                            Ok(Response::WrongTerm { term }) => {
                                self.note_redirect(shard, term, None);
                                deferred.push((shard, chunk.to_vec()));
                            }
                            Ok(first) => {
                                self.settle_read(shard, first, chunk[0], &mut results, "MultiGet")?;
                                self.drain_chunk(
                                    shard,
                                    node,
                                    &chunk[1..],
                                    &mut results,
                                    &mut deferred,
                                    "MultiGet",
                                )?;
                            }
                        }
                    }
                    MgetTarget::Follower(node, chunk) => {
                        match Self::read_response_connected(&conn.nodes[node]) {
                            Err(WireError::Disconnected) => {
                                self.refresh_view(shard);
                                deferred.push((shard, chunk.to_vec()));
                            }
                            Err(e) => return Err(e),
                            Ok(Response::Stale { .. }) => {
                                self.fallbacks.set(self.fallbacks.get() + 1);
                                deferred.push((shard, chunk.to_vec()));
                            }
                            Ok(first) => {
                                self.replica_serves
                                    .set(self.replica_serves.get() + chunk.len() as u64);
                                self.settle_read(
                                    shard,
                                    first,
                                    chunk[0],
                                    &mut results,
                                    "ReplMultiGet",
                                )?;
                                self.drain_chunk(
                                    shard,
                                    node,
                                    &chunk[1..],
                                    &mut results,
                                    &mut deferred,
                                    "ReplMultiGet",
                                )?;
                            }
                        }
                    }
                }
            }
            // Fix-up pass: everything that missed the pipelined round
            // re-fetches authoritatively, with retries and redirects.
            for (shard, positions) in deferred {
                self.fetch_from_leader(shard, &positions, keys, &mut results)?;
            }
        }
        Ok(results)
    }

    /// Records one `Value`/`Miss` read into `results[pos]`.
    fn settle_read(
        &self,
        shard: usize,
        response: Response,
        pos: usize,
        results: &mut [Option<(u64, Vec<u8>)>],
        context: &'static str,
    ) -> Result<(), WireError> {
        match response {
            Response::Value { version, value } => {
                self.observe(shard, version);
                results[pos] = Some((version, value));
                Ok(())
            }
            Response::Miss => {
                results[pos] = None;
                Ok(())
            }
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse(context)),
        }
    }

    /// Drains the remaining reads of a chunk whose head already
    /// answered; positions left unread when the node dies mid-chunk
    /// are deferred to the leader path.
    fn drain_chunk(
        &self,
        shard: usize,
        node: usize,
        rest: &[usize],
        results: &mut [Option<(u64, Vec<u8>)>],
        deferred: &mut Vec<(usize, Vec<usize>)>,
        context: &'static str,
    ) -> Result<(), WireError> {
        let conn = &self.shards[shard].nodes[node];
        for (i, &pos) in rest.iter().enumerate() {
            match Self::read_response_connected(conn) {
                Ok(response) => self.settle_read(shard, response, pos, results, context)?,
                Err(WireError::Disconnected) => {
                    self.refresh_view(shard);
                    deferred.push((shard, rest[i..].to_vec()));
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Authoritatively fetches `positions` through the retrying leader
    /// exchange, in [`MGET_MAX`]-sized slices.
    fn fetch_from_leader(
        &self,
        shard: usize,
        positions: &[usize],
        keys: &[u64],
        results: &mut [Option<(u64, Vec<u8>)>],
    ) -> Result<(), WireError> {
        for slice in positions.chunks(MGET_MAX) {
            let batch: Vec<u64> = slice.iter().map(|&p| keys[p]).collect();
            match self.exchange_at_leader(shard, &Request::MultiGet { keys: batch })? {
                Response::Value { version, value } => {
                    self.observe(shard, version);
                    results[slice[0]] = Some((version, value));
                    self.finish_slice(shard, &slice[1..], results)?;
                }
                Response::Miss => {
                    results[slice[0]] = None;
                    self.finish_slice(shard, &slice[1..], results)?;
                }
                Response::Malformed => return Err(WireError::Rejected),
                _ => return Err(WireError::UnexpectedResponse("MultiGet")),
            }
        }
        Ok(())
    }

    /// Reads the tail of a leader multi-get whose head just landed.
    /// The leader cannot die inside the tail (a scheduled crash only
    /// follows a *write*, and responses are emitted whole between
    /// requests), so a disconnect here is a protocol error.
    fn finish_slice(
        &self,
        shard: usize,
        rest: &[usize],
        results: &mut [Option<(u64, Vec<u8>)>],
    ) -> Result<(), WireError> {
        let view = self.shards[shard].view.get();
        let Some(leader) = view.leader else {
            return Err(WireError::UnexpectedResponse("MultiGet"));
        };
        let conn = &self.shards[shard].nodes[leader];
        for &pos in rest {
            match Self::read_response_connected(conn) {
                Ok(response) => self.settle_read(shard, response, pos, results, "MultiGet")?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Stores a value at the shard's leader; returns its new CAS
    /// version.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply, or
    /// when retries exhaust the deadline.
    pub fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        let shard = shard_of(key, self.shards.len());
        match self.exchange_at_leader(shard, &Request::Set { key, value })? {
            Response::Stored { version } => {
                self.observe(shard, version);
                Ok(version)
            }
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Set")),
        }
    }

    /// Compare-and-set at the shard's leader; the inner result is the
    /// CAS outcome.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply, or
    /// when retries exhaust the deadline.
    pub fn cas(
        &self,
        key: u64,
        value: Vec<u8>,
        expected: u64,
    ) -> Result<Result<u64, u64>, WireError> {
        let shard = shard_of(key, self.shards.len());
        let request = Request::Cas {
            key,
            expected,
            value,
        };
        match self.exchange_at_leader(shard, &request)? {
            Response::Stored { version } => {
                self.observe(shard, version);
                Ok(Ok(version))
            }
            Response::CasFail { current } => Ok(Err(current)),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Cas")),
        }
    }

    /// Deletes a key at the shard's leader; `Some(tombstone_version)`
    /// if it existed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply, or
    /// when retries exhaust the deadline.
    pub fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        let shard = shard_of(key, self.shards.len());
        match self.exchange_at_leader(shard, &Request::Delete { key })? {
            Response::Deleted { version } => {
                self.observe(shard, version);
                Ok(Some(version))
            }
            Response::NotFound => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Delete")),
        }
    }

    /// Tells every node this client is done, consuming the client.
    /// Dead nodes are skipped — their inboxes have no reader.
    pub fn close(self) {
        let stop = Request::Stop.encode();
        for conn in &self.shards {
            for node in &conn.nodes {
                let _ = send_frames(node, &stop);
            }
        }
    }
}

impl KvClient for ReplClient {
    fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        ReplClient::get(self, key)
    }

    fn get_many(&self, keys: &[u64]) -> Result<Vec<ReadHit>, WireError> {
        ReplClient::get_many(self, keys)
    }

    fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        ReplClient::set(self, key, value)
    }

    fn cas(&self, key: u64, value: Vec<u8>, expected: u64) -> Result<Result<u64, u64>, WireError> {
        ReplClient::cas(self, key, value, expected)
    }

    fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        ReplClient::delete(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use ssync_locks::TicketLock;

    /// Spins up a full replication deployment, runs `body` with the
    /// clients, and returns the cluster for post-mortem checks.
    /// `plans` holds backup schedules indexed `shard * replicas +
    /// (node - 1)`; `crash_plans` holds per-shard leader-crash
    /// schedules.
    fn with_replicated<F>(
        mut cluster: ReplCluster<TicketLock>,
        clients: usize,
        plans: &[FaultPlan],
        crash_plans: &[FaultPlan],
        preload: u64,
        body: F,
    ) -> ReplCluster<TicketLock>
    where
        F: FnOnce(Vec<ReplClient>) + Send,
    {
        for key in 0..preload {
            cluster.preload(key, &key.to_be_bytes());
        }
        let replicas = cluster.spec().replicas;
        let mode = cluster.spec().mode;
        let map = cluster.map().clone();
        let (endpoints, repl_clients) = repl_mesh(&map, clients);
        std::thread::scope(|s| {
            let map = &map;
            for (shard, shard_eps) in endpoints.into_iter().enumerate() {
                for endpoint in shard_eps {
                    let node = endpoint.node();
                    let store = cluster.node_store(shard, node);
                    let log = cluster.log(shard).clone();
                    let cfg = NodeConfig {
                        shard,
                        mode,
                        initial_hwm: cluster.preload_hwm(shard),
                        backup_plan: if node == 0 {
                            FaultPlan::none()
                        } else {
                            plans
                                .get(shard * replicas + (node - 1))
                                .cloned()
                                .unwrap_or_default()
                        },
                        crash_plan: crash_plans.get(shard).cloned().unwrap_or_default(),
                    };
                    s.spawn(move || serve_node(store, &log, map, endpoint, cfg));
                }
            }
            body(repl_clients);
        });
        cluster
    }

    #[test]
    fn sync_mode_reads_own_writes_from_replicas() {
        let cluster = ReplCluster::new(2, 64, 8, ReplSpec::sync(2));
        let cluster = with_replicated(cluster, 1, &[], &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..40u64 {
                let v = client.set(key, format!("v{key}").into_bytes()).unwrap();
                // Round-robin guarantees this read lands on a
                // follower; sync mode guarantees it sees the write
                // anyway.
                let (version, value) = client.get(key).unwrap().unwrap();
                assert_eq!(version, v);
                assert_eq!(value, format!("v{key}").into_bytes());
            }
            // Every read was served by a follower: sync mode never
            // bounces.
            assert_eq!(client.fallbacks(), 0);
            assert_eq!(client.replica_serves(), 40);
            client.close();
        });
        assert!(cluster.converged());
        // Each backup applied each write exactly once: 40 writes × 2
        // backup sets.
        assert_eq!(cluster.replica_stats_snapshot().repl_applied, 80);
    }

    #[test]
    fn async_mode_floor_guard_bounces_stale_reads_to_primary() {
        let spec = ReplSpec {
            replicas: 1,
            mode: ReplMode::Async { max_lag: 32 },
            log_capacity: 256,
        };
        // A stall window makes the single backup provably behind while
        // the client keeps writing and reading.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at_entry: 1,
            kind: FaultKind::Stall,
            window: 20,
        }]);
        let cluster = ReplCluster::new(1, 64, 8, spec);
        let cluster = with_replicated(cluster, 1, &[plan], &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            let mut fallbacks_seen = 0;
            for key in 0..30u64 {
                let v = client.set(key, vec![key as u8; 8]).unwrap();
                let before = client.fallbacks();
                let (version, value) = client.get(key).unwrap().unwrap();
                // Correctness despite the stalled backup: the floor
                // guard rejects stale data, the leader answers.
                assert_eq!(version, v);
                assert_eq!(value, vec![key as u8; 8]);
                fallbacks_seen += client.fallbacks() - before;
            }
            // The stall window covers the first 20 entries, so early
            // reads must have bounced.
            assert!(fallbacks_seen > 0, "stalled backup never bounced a read");
            client.close();
        });
        assert!(cluster.converged());
    }

    #[test]
    fn crashed_backup_catches_up_from_the_log() {
        let spec = ReplSpec {
            replicas: 1,
            mode: ReplMode::Async { max_lag: 16 },
            log_capacity: 256,
        };
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at_entry: 3,
            kind: FaultKind::Crash,
            window: 4,
        }]);
        let cluster = ReplCluster::new(1, 64, 8, spec);
        let cluster = with_replicated(cluster, 1, &[plan], &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..10u64 {
                client.set(key, key.to_be_bytes().to_vec()).unwrap();
            }
            client.close();
        });
        // Entries 3..=6 were lost on the wire and replayed from the
        // op-log; the backup ends byte-identical regardless.
        assert!(cluster.converged());
        let snap = cluster.replica_stats_snapshot();
        assert_eq!(snap.repl_applied, 10, "all 10 writes applied exactly once");
    }

    #[test]
    fn crash_over_delete_does_not_resurrect_the_key() {
        // The scenario the stream-order gate exists for: a put and its
        // key's later tombstone both fall inside a crash window; the
        // log replay applies both in order, and the in-flight
        // duplicates that follow must not bring the key back.
        let spec = ReplSpec {
            replicas: 1,
            mode: ReplMode::Async { max_lag: 16 },
            log_capacity: 256,
        };
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at_entry: 2,
            kind: FaultKind::Crash,
            window: 2,
        }]);
        let cluster = ReplCluster::new(1, 64, 8, spec);
        let cluster = with_replicated(cluster, 1, &[plan], &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            client.set(1, b"a".to_vec()).unwrap(); // entry 1
            client.set(2, b"b".to_vec()).unwrap(); // entry 2: crash opens
            client.delete(2).unwrap(); // entry 3: tombstone, in-window
            client.set(3, b"c".to_vec()).unwrap(); // entry 4: post-reboot
            client.close();
        });
        assert!(cluster.converged());
        assert!(cluster.replica_set(0).shard(0).get(&key_bytes(2)).is_none());
    }

    #[test]
    fn fanned_out_multi_get_returns_input_order() {
        let cluster = ReplCluster::new(2, 64, 8, ReplSpec::sync(2));
        let cluster = with_replicated(cluster, 1, &[], &[], 64, |mut clients| {
            let client = clients.pop().unwrap();
            // 40 present keys + 10 misses, shuffled across shards;
            // chunks fan out over 3 endpoints per shard.
            let keys: Vec<u64> = (0..50).map(|i| if i < 40 { i } else { i + 100 }).collect();
            let results = client.get_many(&keys).unwrap();
            for (i, res) in results.iter().enumerate() {
                if i < 40 {
                    let (_, value) = res.as_ref().expect("present key");
                    assert_eq!(value.as_slice(), &(i as u64).to_be_bytes());
                } else {
                    assert!(res.is_none(), "key {} should miss", keys[i]);
                }
            }
            // With fresh sync replicas, most chunks are served by
            // followers.
            assert!(client.replica_serves() > 0);
            client.close();
        });
        assert!(cluster.converged());
    }

    /// Regression test for a cross-client deadlock: two clients
    /// fanning batched reads over the same two backups used to assign
    /// chunks round-robin *per client*, so they could drain the
    /// backups in opposite orders — with 1-deep reply channels and
    /// multi-frame replies, replica A blocked sending to client 1
    /// (draining replica B first) while replica B blocked sending to
    /// client 2 (draining replica A first). The fixed global endpoint
    /// order makes the waits-for graph acyclic; this test hammers the
    /// exact shape that used to wedge (skewed batches, long values,
    /// concurrent clients).
    #[test]
    fn concurrent_batched_fanout_cannot_deadlock() {
        let cluster = ReplCluster::new(2, 256, 16, ReplSpec::sync(2));
        let cluster = with_replicated(cluster, 2, &[], &[], 512, |clients| {
            std::thread::scope(|s| {
                for (c, client) in clients.into_iter().enumerate() {
                    s.spawn(move || {
                        // Zipf-like repetition: hot keys recur within
                        // a batch, skewing chunks onto one shard.
                        for i in 0..60u64 {
                            let keys: Vec<u64> =
                                (0..24).map(|j| (i * 7 + j * j + c as u64) % 512).collect();
                            let results = client.get_many(&keys).unwrap();
                            for (j, res) in results.iter().enumerate() {
                                let (_, value) = res.as_ref().expect("preloaded key");
                                assert_eq!(value.as_slice(), &keys[j].to_be_bytes());
                            }
                        }
                        client.close();
                    });
                }
            });
        });
        assert!(cluster.converged());
    }

    #[test]
    fn zero_replicas_degenerates_to_the_plain_service() {
        let cluster = ReplCluster::new(2, 64, 8, ReplSpec::async_bounded(0));
        let cluster = with_replicated(cluster, 2, &[], &[], 0, |clients| {
            std::thread::scope(|s| {
                for (c, client) in clients.into_iter().enumerate() {
                    s.spawn(move || {
                        let base = c as u64 * 1000;
                        for i in 0..50 {
                            client.set(base + i, vec![c as u8; 16]).unwrap();
                            let (_, value) = client.get(base + i).unwrap().unwrap();
                            assert_eq!(value, vec![c as u8; 16]);
                        }
                        assert_eq!(client.replica_serves(), 0);
                        client.close();
                    });
                }
            });
        });
        assert!(cluster.converged(), "no replicas is trivially converged");
        assert_eq!(cluster.primary().len(), 100);
        // Nothing was ever logged: no backup could consume it.
        assert!(cluster.log(0).is_empty() && cluster.log(1).is_empty());
    }

    #[test]
    fn malformed_frames_and_misdirected_requests_get_refused() {
        let cluster = ReplCluster::new(1, 64, 8, ReplSpec::sync(1));
        with_replicated(cluster, 1, &[], &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            client.set(1, b"x".to_vec()).unwrap();
            let conn = &client.shards[0];
            // Garbage straight at the leader.
            conn.nodes[0].0.send([0xEE; ssync_mp::MSG_WORDS]);
            let head = conn.nodes[0].1.recv();
            assert_eq!(
                Response::decode(head, || unreachable!()).unwrap(),
                Response::Malformed
            );
            // A write at a follower bounces with the current view.
            send_all(&conn.nodes[1].0, &Request::Get { key: 1 }.encode());
            let head = conn.nodes[1].1.recv();
            assert_eq!(
                Response::decode(head, || unreachable!()).unwrap(),
                Response::WrongLeader { term: 1, leader: 0 }
            );
            // A replication frame on a client connection is a protocol
            // violation, not a write.
            send_all(
                &conn.nodes[0].0,
                &Request::Replicate {
                    key: 1,
                    version: 99,
                    value: b"evil".to_vec(),
                }
                .encode(),
            );
            let head = conn.nodes[0].1.recv();
            assert_eq!(
                Response::decode(head, || unreachable!()).unwrap(),
                Response::Malformed
            );
            // All servers still alive.
            assert!(client.get(1).unwrap().is_some());
            client.close();
        });
    }

    #[test]
    fn stats_scrape_answers_on_any_role_and_survives_malformed_frames() {
        let cluster = ReplCluster::new(1, 64, 8, ReplSpec::sync(1));
        with_replicated(cluster, 1, &[], &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..16u64 {
                client.set(key, vec![key as u8; 8]).unwrap();
                client.get(key).unwrap().unwrap();
            }
            // The leader answers with its live serving counters. The
            // 16 writes all land here; the reads route to the replica,
            // so only the writes (plus this scrape) are guaranteed.
            let leader = client.stats_of(0, 0).unwrap();
            assert_eq!(leader.counter("node.leading"), Some(1));
            assert!(leader.counter("node.requests").unwrap() >= 17);
            assert_eq!(leader.counter("store.sets"), Some(16));
            // The follower answers too — introspection never chases
            // the leader, so a scrape works mid-failover.
            let follower = client.stats_of(0, 1).unwrap();
            assert_eq!(follower.counter("node.leading"), Some(0));
            assert_eq!(
                follower.counter("node.applied"),
                Some(16),
                "sync replication applies every write at the follower"
            );
            // A garbage frame between scrapes is refused, not fatal...
            client.shards[0].nodes[0]
                .0
                .send([0xEE; ssync_mp::MSG_WORDS]);
            let head = client.shards[0].nodes[0].1.recv();
            assert_eq!(
                Response::decode(head, || unreachable!()).unwrap(),
                Response::Malformed
            );
            // ...and the next scrape of the same node counts it.
            let again = client.stats_of(0, 0).unwrap();
            assert_eq!(again.counter("node.malformed"), Some(1));
            assert!(
                again.counter("node.requests").unwrap() > leader.counter("node.requests").unwrap()
            );
            client.close();
        });
    }

    #[test]
    fn scheduled_leader_crash_fails_over_while_the_client_rides_through() {
        let cluster = ReplCluster::new(1, 64, 8, ReplSpec::sync(2));
        let crash = FaultPlan::primary_crashes(vec![3]);
        let cluster = with_replicated(cluster, 1, &[], &[crash], 0, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..8u64 {
                let v = client.set(key, vec![key as u8; 4]).unwrap();
                let (version, value) = client.get(key).unwrap().unwrap();
                assert_eq!((version, value), (v, vec![key as u8; 4]));
            }
            assert!(
                client.lost_to_retry() + client.redirects() > 0,
                "the crash must have been visible to the client"
            );
            client.close();
        });
        assert!(cluster.converged());
        let view = cluster.map().view(0);
        assert_eq!(view.term, 2, "one crash bumps the term once");
        assert_ne!(view.leader, Some(0), "the dead seed leader cannot lead");
        assert_eq!(cluster.map().failovers(0), 1);
    }

    #[test]
    fn client_deadline_fires_instead_of_hanging_on_a_dead_group() {
        // Replicas = 0: the crash leaves no succession line, so the
        // shard stays dead and every write must fail fast — the
        // regression this PR's disconnect plumbing exists for.
        let cluster = ReplCluster::new(1, 64, 8, ReplSpec::sync(0));
        let crash = FaultPlan::primary_crashes(vec![1]);
        with_replicated(cluster, 1, &[], &[crash], 0, |mut clients| {
            let client = clients
                .pop()
                .unwrap()
                .with_deadline(Duration::from_millis(100));
            client.set(1, b"last words".to_vec()).unwrap();
            let err = client.set(2, b"void".to_vec()).unwrap_err();
            assert!(
                matches!(err, WireError::Disconnected | WireError::Deadline),
                "a dead group must surface as a transport error, got {err:?}"
            );
            let err = client.get(1).unwrap_err();
            assert!(matches!(err, WireError::Disconnected | WireError::Deadline));
            client.close();
        });
    }

    #[test]
    fn stale_reads_opt_in_serves_a_leaderless_shard() {
        // An observer follower can never be promoted, so one leader
        // crash leaves the shard leaderless for good. A stall window
        // keeps the follower provably behind the writer's freshness
        // floor, forcing reads onto the (dead) leader: the stale-reads
        // client then degrades to floor-free replica reads, while the
        // strict client's write times out.
        let spec = ReplSpec {
            replicas: 1,
            mode: ReplMode::Async { max_lag: 32 },
            log_capacity: 256,
        };
        let cluster: ReplCluster<TicketLock> = ReplCluster::new(1, 64, 8, spec);
        cluster.map().set_observer(0, 1);
        let stall = FaultPlan::from_events(vec![FaultEvent {
            at_entry: 3,
            kind: FaultKind::Stall,
            window: 10,
        }]);
        let crash = FaultPlan::primary_crashes(vec![5]);
        with_replicated(cluster, 2, &[stall], &[crash], 0, |mut clients| {
            let strict = clients
                .pop()
                .unwrap()
                .with_deadline(Duration::from_millis(100));
            let stale = clients
                .pop()
                .unwrap()
                .with_stale_reads()
                .with_deadline(Duration::from_millis(200));
            for key in 0..5u64 {
                stale.set(key, vec![key as u8; 3]).unwrap();
            }
            // The fifth write killed the leader; the follower sits in
            // an open stall window (entries 3..=5 buffered, hwm at
            // entry 2) and, as an observer, will never be promoted.
            // The floor-guarded read bounces, the leader is gone, and
            // the stale path serves what the follower has applied.
            let (_, value) = stale.get(0).unwrap().expect("applied before the stall");
            assert_eq!(value, vec![0u8; 3]);
            assert!(
                stale.stale_served() > 0,
                "the read must have taken the floor-free stale path"
            );
            let err = strict.set(9, b"void".to_vec()).unwrap_err();
            assert!(matches!(err, WireError::Disconnected | WireError::Deadline));
            stale.close();
            strict.close();
        });
    }
}

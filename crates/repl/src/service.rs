//! Primary/backup replication over the `ssync-srv` service.
//!
//! Each shard becomes a *replication group*: one primary server thread
//! owning the authoritative `KvStore` plus R backup threads, each with
//! its own store. All traffic — client requests, the replication
//! stream, acks, replica reads — rides `ssync-mp` cache-line frames,
//! but over the *ring* flavour ([`ssync_mp::ring_channel`]): a
//! replication stream is bursty and replica reads return wide
//! multi-frame replies, and on an oversubscribed host a one-deep
//! buffer would cost a context-switch pair per frame. The ring depth
//! lets a primary stream a burst of entries, and a backup write a
//! whole bulk-read reply, without handing the core over per cache
//! line.
//!
//! **Write path.** The primary applies a write under its store's lock,
//! takes the CAS version the store assigned (the per-shard replication
//! sequence — writes are serialized by the server thread, so versions
//! are strictly increasing), appends the entry to the shard's bounded
//! [`OpLog`], and streams a `Replicate` frame to every backup. Backups
//! apply idempotently through the version gate
//! (`KvStore::apply_replicated`) and return *cumulative* acks. In
//! [`ReplMode::Sync`] the primary waits for every backup's ack before
//! replying (read-your-writes from any replica); in
//! [`ReplMode::Async`] it replies immediately and only blocks when a
//! backup falls more than `max_lag` log entries behind.
//!
//! **Read path.** Clients route reads round-robin across a shard's
//! backups, attaching a *freshness floor* — the highest version this
//! client has observed on that shard. A backup behind the floor (or
//! down) answers `Stale` and the client falls back to the primary, so
//! reads are never stale *to the reader* even in async mode.
//!
//! **Deadlock discipline** (rings are deeper than one frame but still
//! bounded, so the same rules apply):
//! * the primary's blocking sends to a backup are safe because a
//!   backup never blocks *on the primary or on acks*: it runs a
//!   polling loop (even a "crashed" backup keeps draining,
//!   discarding), and its only blocking sends are reply frames to a
//!   client that, having an outstanding request on that very ring, is
//!   by construction draining it;
//! * a backup acks with `try_send`, coalescing into the latest
//!   cumulative version when the ack channel is full (acks are
//!   cumulative, so dropped intermediates are harmless) and retrying
//!   every loop iteration;
//! * clients keep at most one request in flight per shard endpoint and
//!   drain shards in index order — one global order shared by every
//!   client, so the waits-for graph over bounded reply channels cannot
//!   close a cycle.
//!
//! Fault windows (stall/crash) are entry-indexed and deterministic —
//! see [`crate::fault`] — and only legal in async mode with windows
//! below the lag bound (a primary blocked on the bound can never
//! deliver the entries that would close a window).

use std::cell::Cell;
use std::sync::Arc;

use bytes::Bytes;

use ssync_core::ParkingWait;
use ssync_kv::{KvStore, StatsSnapshot};
use ssync_locks::RawLock;
use ssync_mp::{ring_channel, Message, RingReceiver, RingSender, ServerHub};
use ssync_srv::router::{key_bytes, shard_of, ShardRouter};
use ssync_srv::service::{KvClient, ReadHit};
use ssync_srv::wire::{Request, Response, WireError, MGET_MAX, REPL_MGET_MAX};

use crate::fault::{FaultKind, FaultPlan};
use crate::log::{LogEntry, LogOp, OpLog};

/// When the primary replies to a replicated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplMode {
    /// Ack-before-reply: every backup has applied the write before the
    /// client hears `Stored`. Read-your-writes from any replica, at
    /// write latency cost.
    Sync,
    /// Reply immediately; backups trail by at most `max_lag` op-log
    /// entries (the primary stalls draining acks past that). Stale
    /// replica reads fall back to the primary via the floor guard.
    Async {
        /// Maximum op-log entries a backup may trail by.
        max_lag: u64,
    },
}

/// A replication group shape: how many backups per shard, the reply
/// mode, and the op-log bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplSpec {
    /// Backups per shard (0 = plain unreplicated service).
    pub replicas: usize,
    /// Write acknowledgement mode.
    pub mode: ReplMode,
    /// Op-log capacity per shard, in entries.
    pub log_capacity: usize,
}

impl ReplSpec {
    /// A sync-mode spec with `replicas` backups.
    pub fn sync(replicas: usize) -> ReplSpec {
        ReplSpec {
            replicas,
            mode: ReplMode::Sync,
            log_capacity: 4096,
        }
    }

    /// An async-mode spec with `replicas` backups and the default lag
    /// bound of 64 entries.
    pub fn async_bounded(replicas: usize) -> ReplSpec {
        ReplSpec {
            replicas,
            mode: ReplMode::Async { max_lag: 64 },
            log_capacity: 4096,
        }
    }

    /// Checks internal consistency (positive capacity, lag bound below
    /// capacity).
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent spec.
    pub fn validate(&self) {
        assert!(self.log_capacity > 0, "log capacity must be positive");
        if let ReplMode::Async { max_lag } = self.mode {
            assert!(max_lag >= 1, "async lag bound must be at least 1");
            assert!(
                (max_lag as usize) < self.log_capacity,
                "lag bound {max_lag} must stay below log capacity {}",
                self.log_capacity
            );
        }
    }
}

/// The stores of a replication deployment: the primary shard router,
/// one full router per backup replica set, and one op-log per shard.
pub struct ReplCluster<R: RawLock + Default> {
    primary: ShardRouter<R>,
    replica_sets: Vec<ShardRouter<R>>,
    logs: Vec<Arc<OpLog>>,
    preload_hwm: Vec<u64>,
    spec: ReplSpec,
}

impl<R: RawLock + Default> ReplCluster<R> {
    /// Builds the stores for `shards` shards of `buckets`×`stripes`
    /// each, replicated per `spec`.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count, invalid store geometry, or an
    /// inconsistent `spec`.
    pub fn new(shards: usize, buckets: usize, stripes: usize, spec: ReplSpec) -> Self {
        spec.validate();
        ReplCluster {
            primary: ShardRouter::new(shards, buckets, stripes),
            replica_sets: (0..spec.replicas)
                .map(|_| ShardRouter::new(shards, buckets, stripes))
                .collect(),
            logs: (0..shards)
                .map(|_| Arc::new(OpLog::new(spec.log_capacity)))
                .collect(),
            preload_hwm: vec![0; shards],
            spec,
        }
    }

    /// The replication shape.
    pub fn spec(&self) -> &ReplSpec {
        &self.spec
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.primary.num_shards()
    }

    /// The primary router.
    pub fn primary(&self) -> &ShardRouter<R> {
        &self.primary
    }

    /// Backup replica set `r` (a full router: its shard `s` backs the
    /// primary's shard `s`).
    pub fn replica_set(&self, r: usize) -> &ShardRouter<R> {
        &self.replica_sets[r]
    }

    /// Shard `s`'s op-log.
    pub fn log(&self, s: usize) -> &Arc<OpLog> {
        &self.logs[s]
    }

    /// Seeds one key everywhere before serving starts: the primary
    /// assigns the version, every backup applies it, and the shard's
    /// preload high-water mark advances — so backups start caught-up
    /// and the op-log starts empty.
    pub fn preload(&mut self, key: u64, value: &[u8]) -> u64 {
        let shard = shard_of(key, self.num_shards());
        let version = self.primary.shard(shard).set(&key_bytes(key), value);
        for set in &self.replica_sets {
            set.shard(shard)
                .apply_replicated(&key_bytes(key), version, Some(value));
        }
        self.preload_hwm[shard] = self.preload_hwm[shard].max(version);
        version
    }

    /// The post-preload high-water mark of shard `s` (backups and the
    /// primary's ack baseline start here).
    pub fn preload_hwm(&self, s: usize) -> u64 {
        self.preload_hwm[s]
    }

    /// True if every backup's every shard holds exactly the primary's
    /// contents (keys, values, and versions). Only meaningful once the
    /// servers have shut down (the final ack handshake guarantees
    /// backups are caught up by then).
    pub fn converged(&self) -> bool {
        (0..self.num_shards()).all(|s| {
            let want = self.primary.shard(s).dump();
            self.replica_sets
                .iter()
                .all(|set| set.shard(s).dump() == want)
        })
    }

    /// Aggregated statistics over every backup store.
    pub fn replica_stats_snapshot(&self) -> StatsSnapshot {
        self.replica_sets
            .iter()
            .map(ShardRouter::stats_snapshot)
            .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s))
    }
}

/// Ring depth of client request/reply connections. A bulk reply at
/// typical value sizes (≤ ~3 frames per key × [`REPL_MGET_MAX`] keys)
/// fits without blocking the server; a worst-case reply (64 keys of
/// [`crate::log`]-limit values ≈ 1.2k frames) does *not* — the server
/// then blocks mid-reply, which is still cycle-free (the one client
/// with an outstanding request on this ring is by construction
/// draining it), but a backup blocked this way pauses stream applies
/// and acks until the client catches up. Deeper buys memory for an
/// edge case; this depth covers every workload the harnesses run.
const CONN_DEPTH: usize = 256;

/// Ring depth of the primary→backup replication stream: an async
/// primary can burst a lag bound's worth of entries (≈2 frames each)
/// without a scheduler handoff per entry.
const STREAM_DEPTH: usize = 256;

/// Ring depth of the backup→primary ack channel (acks coalesce, so
/// shallow is fine).
const ACK_DEPTH: usize = 8;

/// A primary server's side of the mesh: the client channels plus one
/// (stream, ack) channel pair per backup.
pub struct PrimaryEndpoint {
    client_requests: Vec<RingReceiver>,
    client_replies: Vec<RingSender>,
    streams: Vec<RingSender>,
    acks: Vec<RingReceiver>,
}

/// A backup server's side of the mesh: the primary's stream, the ack
/// channel back, and its own per-client channels for replica reads.
pub struct ReplicaEndpoint {
    stream: RingReceiver,
    ack: RingSender,
    client_requests: Vec<RingReceiver>,
    client_replies: Vec<RingSender>,
}

type Conn = (RingSender, RingReceiver);

/// One client's connections to one replication group.
struct ShardConn {
    primary: Conn,
    replicas: Vec<Conn>,
    /// Round-robin cursor over the backups.
    rr: Cell<usize>,
    /// Freshness floor: the highest version this client has observed
    /// on this shard (writes *and* reads raise it, giving
    /// read-your-writes and monotonic reads across replicas).
    floor: Cell<u64>,
}

/// A client of the replicated service: writes go to primaries, reads
/// round-robin across backups with the freshness floor as the
/// staleness guard, falling back to the primary on a `Stale` answer.
pub struct ReplClient {
    shards: Vec<ShardConn>,
    /// Replica reads that bounced to the primary (client-side view).
    fallbacks: Cell<u64>,
    /// Reads answered by a backup.
    replica_serves: Cell<u64>,
}

/// Builds the full channel mesh for a replicated deployment: per shard
/// one [`PrimaryEndpoint`] and `replicas` [`ReplicaEndpoint`]s, plus
/// one [`ReplClient`] per client. Returned replica endpoints are
/// indexed `[shard][replica]`.
///
/// # Panics
///
/// Panics if `shards` or `clients` is zero.
pub fn repl_mesh(
    shards: usize,
    replicas: usize,
    clients: usize,
) -> (
    Vec<PrimaryEndpoint>,
    Vec<Vec<ReplicaEndpoint>>,
    Vec<ReplClient>,
) {
    assert!(shards > 0 && clients > 0);
    let mut primaries = Vec::with_capacity(shards);
    let mut replica_endpoints: Vec<Vec<ReplicaEndpoint>> = Vec::with_capacity(shards);
    let mut client_conns: Vec<Vec<ShardConn>> = (0..clients).map(|_| Vec::new()).collect();
    for _ in 0..shards {
        let mut primary = PrimaryEndpoint {
            client_requests: Vec::with_capacity(clients),
            client_replies: Vec::with_capacity(clients),
            streams: Vec::with_capacity(replicas),
            acks: Vec::with_capacity(replicas),
        };
        let mut backups: Vec<ReplicaEndpoint> = (0..replicas)
            .map(|_| {
                let (stream_tx, stream_rx) = ring_channel(STREAM_DEPTH);
                let (ack_tx, ack_rx) = ring_channel(ACK_DEPTH);
                primary.streams.push(stream_tx);
                primary.acks.push(ack_rx);
                ReplicaEndpoint {
                    stream: stream_rx,
                    ack: ack_tx,
                    client_requests: Vec::with_capacity(clients),
                    client_replies: Vec::with_capacity(clients),
                }
            })
            .collect();
        for conns in client_conns.iter_mut() {
            let (req_tx, req_rx) = ring_channel(CONN_DEPTH);
            let (rep_tx, rep_rx) = ring_channel(CONN_DEPTH);
            primary.client_requests.push(req_rx);
            primary.client_replies.push(rep_tx);
            let mut replica_conns = Vec::with_capacity(replicas);
            for backup in backups.iter_mut() {
                let (req_tx, req_rx) = ring_channel(CONN_DEPTH);
                let (rep_tx, rep_rx) = ring_channel(CONN_DEPTH);
                backup.client_requests.push(req_rx);
                backup.client_replies.push(rep_tx);
                replica_conns.push((req_tx, rep_rx));
            }
            conns.push(ShardConn {
                primary: (req_tx, rep_rx),
                replicas: replica_conns,
                rr: Cell::new(0),
                floor: Cell::new(0),
            });
        }
        primaries.push(primary);
        replica_endpoints.push(backups);
    }
    let clients = client_conns
        .into_iter()
        .map(|shards| ReplClient {
            shards,
            fallbacks: Cell::new(0),
            replica_serves: Cell::new(0),
        })
        .collect();
    (primaries, replica_endpoints, clients)
}

/// What one primary server did before shutdown.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PrimaryReport {
    /// Client request messages served.
    pub requests: u64,
    /// Key-operations executed.
    pub key_ops: u64,
    /// Undecodable head frames answered with `Malformed`.
    pub malformed: u64,
    /// Replication entries appended and streamed.
    pub entries: u64,
    /// The last version logged (backups acked through this at exit).
    pub last_version: u64,
}

/// What one backup server did before shutdown.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaReport {
    /// Entries applied from the live stream.
    pub applied: u64,
    /// Entries applied from the op-log during crash catch-ups.
    pub from_log: u64,
    /// Stream entries dropped by the high-water-mark gate (in-flight
    /// duplicates of entries already replayed from the log).
    pub stale_drops: u64,
    /// Reads refused with `Stale` (client fell back to the primary).
    pub refused_reads: u64,
    /// Crash windows taken.
    pub crashes: u64,
    /// Stall windows taken.
    pub stalls: u64,
    /// Final applied high-water version.
    pub hwm: u64,
}

fn send_all(tx: &RingSender, frames: &[Message]) {
    for &frame in frames {
        tx.send(frame);
    }
}

fn lookup<R: RawLock + Default>(store: &KvStore<R>, key: u64) -> Response {
    match store.get_with_version(&key_bytes(key)) {
        Some((version, value)) => Response::Value {
            version,
            value: value.as_ref().to_vec(),
        },
        None => Response::Miss,
    }
}

/// Decodes a cumulative ack. The ack channel is internal to the group,
/// so anything but a `ReplAck` is a program bug, not input.
fn ack_version(head: Message) -> u64 {
    match Response::decode(head, || unreachable!("acks have no continuation frames")) {
        Ok(Response::ReplAck { version }) => version,
        other => unreachable!("backup sent {other:?} on its ack channel"),
    }
}

/// Runs one shard's primary loop: serve clients, stream every write to
/// the backups per `mode`, and shut the group down once all clients
/// stopped (streaming `Stop` to the backups and waiting for their
/// final cumulative acks, so the group is converged on exit).
///
/// `initial_hwm` is the shard's post-preload high-water mark
/// ([`ReplCluster::preload_hwm`]).
pub fn serve_primary<R: RawLock + Default>(
    store: &KvStore<R>,
    log: &OpLog,
    endpoint: PrimaryEndpoint,
    mode: ReplMode,
    initial_hwm: u64,
) -> PrimaryReport {
    let PrimaryEndpoint {
        client_requests,
        client_replies,
        streams,
        acks,
    } = endpoint;
    let mut live = client_requests.len();
    let mut hub = ServerHub::new(client_requests);
    let mut acked = vec![initial_hwm; streams.len()];
    let mut report = PrimaryReport {
        last_version: initial_hwm,
        ..PrimaryReport::default()
    };

    // Streams one logged write to every backup and settles acks per
    // the mode's contract.
    let replicate = |entry: LogEntry, acked: &mut [u64], report: &mut PrimaryReport| {
        if streams.is_empty() {
            // Unreplicated shard: nothing to log (no backup will ever
            // ack, so nothing could ever be truncated) or stream.
            report.last_version = entry.version;
            return;
        }
        let request = match &entry.op {
            LogOp::Put(value) => Request::Replicate {
                key: entry.key,
                version: entry.version,
                value: value.as_ref().to_vec(),
            },
            LogOp::Delete => Request::ReplicateDelete {
                key: entry.key,
                version: entry.version,
            },
        };
        let version = entry.version;
        log.append(entry);
        report.entries += 1;
        report.last_version = version;
        let frames = request.encode();
        for tx in &streams {
            send_all(tx, &frames);
        }
        match mode {
            ReplMode::Sync => {
                for (r, rx) in acks.iter().enumerate() {
                    while acked[r] < version {
                        acked[r] = ack_version(rx.recv());
                    }
                }
            }
            ReplMode::Async { max_lag } => {
                for (r, rx) in acks.iter().enumerate() {
                    while let Some(head) = rx.try_recv() {
                        acked[r] = ack_version(head);
                    }
                    while log.outstanding_after(acked[r]) as u64 > max_lag {
                        acked[r] = ack_version(rx.recv());
                    }
                }
            }
        }
        if let Some(&min_acked) = acked.iter().min() {
            log.truncate_through(min_acked);
        }
    };

    // Parking poll loop rather than the hub's spin-yield receive: a
    // primary can sit fully idle on replica-read-heavy phases, and an
    // idle thread that yield-loops taxes every busy thread on an
    // oversubscribed host with a context switch per scheduling cycle.
    let mut wait = ParkingWait::new();
    while live > 0 {
        let (client, head) = loop {
            match hub.try_recv_from_any() {
                Some(hit) => {
                    wait.reset();
                    break hit;
                }
                None => wait.snooze(),
            }
        };
        let request = match Request::decode(head, || hub.recv_from_subset(&[client]).1) {
            Ok(request) => request,
            Err(_) => {
                report.malformed += 1;
                send_all(&client_replies[client], &Response::Malformed.encode());
                continue;
            }
        };
        if matches!(request, Request::Stop) {
            live -= 1;
            continue;
        }
        report.requests += 1;
        let responses: Vec<Response> = match request {
            Request::Get { key } => {
                report.key_ops += 1;
                vec![lookup(store, key)]
            }
            Request::MultiGet { keys } => {
                report.key_ops += keys.len() as u64;
                keys.into_iter().map(|key| lookup(store, key)).collect()
            }
            Request::Set { key, value } => {
                report.key_ops += 1;
                let value = Bytes::from(value);
                let version = store.set(&key_bytes(key), value.clone());
                replicate(
                    LogEntry {
                        key,
                        version,
                        op: LogOp::Put(value),
                    },
                    &mut acked,
                    &mut report,
                );
                vec![Response::Stored { version }]
            }
            Request::Cas {
                key,
                expected,
                value,
            } => {
                report.key_ops += 1;
                let value = Bytes::from(value);
                match store.cas(&key_bytes(key), value.clone(), expected) {
                    Ok(version) => {
                        replicate(
                            LogEntry {
                                key,
                                version,
                                op: LogOp::Put(value),
                            },
                            &mut acked,
                            &mut report,
                        );
                        vec![Response::Stored { version }]
                    }
                    Err(current) => vec![Response::CasFail { current }],
                }
            }
            Request::Delete { key } => {
                report.key_ops += 1;
                match store.delete_versioned(&key_bytes(key)) {
                    Some(version) => {
                        replicate(
                            LogEntry {
                                key,
                                version,
                                op: LogOp::Delete,
                            },
                            &mut acked,
                            &mut report,
                        );
                        vec![Response::Deleted { version }]
                    }
                    None => vec![Response::NotFound],
                }
            }
            // Replication traffic addressed *to* a primary is a
            // protocol violation; refuse it without executing.
            Request::Replicate { .. }
            | Request::ReplicateDelete { .. }
            | Request::ReplGet { .. }
            | Request::ReplMultiGet { .. } => {
                report.malformed += 1;
                vec![Response::Malformed]
            }
            Request::Stop => unreachable!("Stop is handled above"),
        };
        for response in responses {
            send_all(&client_replies[client], &response.encode());
        }
    }

    // Shutdown handshake: stream Stop, then wait until every backup's
    // cumulative ack reaches the last logged version — the group is
    // converged when this returns.
    let stop = Request::Stop.encode();
    for tx in &streams {
        send_all(tx, &stop);
    }
    for (r, rx) in acks.iter().enumerate() {
        while acked[r] < report.last_version {
            acked[r] = ack_version(rx.recv());
        }
    }
    report
}

/// A backup's replication state machine (entry-indexed fault windows).
enum BackupState {
    Healthy,
    Stalled { left: u64, buffered: Vec<LogEntry> },
    Crashed { left: u64 },
}

/// Runs one backup's loop: apply the primary's stream through the
/// version gates, serve floor-guarded replica reads, inject the
/// schedule's faults, and exit after the primary's `Stop` and every
/// client's `Stop` (flushing the final cumulative ack first).
///
/// The loop never blocks — it polls and `try_send`s acks — which is
/// what lets the primary use blocking sends safely.
pub fn serve_replica<R: RawLock + Default>(
    store: &KvStore<R>,
    log: &OpLog,
    endpoint: ReplicaEndpoint,
    plan: &FaultPlan,
    initial_hwm: u64,
) -> ReplicaReport {
    let ReplicaEndpoint {
        stream,
        ack,
        client_requests,
        client_replies,
    } = endpoint;
    // Hub receiver 0 is the primary's stream; client c is receiver
    // c + 1.
    let mut receivers = Vec::with_capacity(client_requests.len() + 1);
    receivers.push(stream);
    receivers.extend(client_requests);
    let mut hub = ServerHub::new(receivers);

    let mut report = ReplicaReport {
        hwm: initial_hwm,
        ..ReplicaReport::default()
    };
    let mut live_clients = client_replies.len();
    let mut primary_done = false;
    let mut pending_ack: Option<u64> = None;
    let mut entries_seen: u64 = 0;
    let mut next_fault = 0usize;
    let mut state = BackupState::Healthy;
    let mut wait = ParkingWait::new();

    /// Applies one entry through the stream-order gate (the layer that
    /// blocks delete-resurrection) and the store's per-key gate.
    fn apply<R: RawLock + Default>(
        store: &KvStore<R>,
        entry: &LogEntry,
        report: &mut ReplicaReport,
        from_log: bool,
    ) {
        if entry.version <= report.hwm {
            report.stale_drops += 1;
            store
                .stats()
                .repl_stale_drops
                .fetch_add(1, crate::sync::atomic::Ordering::Relaxed);
            return;
        }
        let value = match &entry.op {
            LogOp::Put(value) => Some(value.as_ref()),
            LogOp::Delete => None,
        };
        store.apply_replicated(&key_bytes(entry.key), entry.version, value);
        report.hwm = entry.version;
        if from_log {
            report.from_log += 1;
        } else {
            report.applied += 1;
        }
    }

    loop {
        // Flush the coalesced cumulative ack whenever the channel has
        // room; a fuller channel just means the primary reads a fresher
        // ack later.
        if let Some(version) = pending_ack {
            let frames = Response::ReplAck { version }.encode();
            debug_assert_eq!(frames.len(), 1);
            if ack.try_send(frames[0]).is_ok() {
                pending_ack = None;
            }
        }
        let (source, head) = match hub.try_recv_from_any() {
            Some(hit) => {
                wait.reset();
                hit
            }
            None => {
                if primary_done && live_clients == 0 && pending_ack.is_none() {
                    return report;
                }
                wait.snooze();
                continue;
            }
        };
        let decoded = Request::decode(head, || hub.recv_from_subset(&[source]).1);
        if source == 0 {
            // The primary's replication stream.
            let entry = match decoded {
                Ok(Request::Replicate {
                    key,
                    version,
                    value,
                }) => LogEntry {
                    key,
                    version,
                    op: LogOp::Put(Bytes::from(value)),
                },
                Ok(Request::ReplicateDelete { key, version }) => LogEntry {
                    key,
                    version,
                    op: LogOp::Delete,
                },
                Ok(Request::Stop) => {
                    // Close any open fault window before shutdown.
                    match std::mem::replace(&mut state, BackupState::Healthy) {
                        BackupState::Stalled { buffered, .. } => {
                            for entry in &buffered {
                                apply(store, entry, &mut report, false);
                            }
                        }
                        BackupState::Crashed { .. } => {
                            for entry in &log.entries_after(report.hwm) {
                                apply(store, entry, &mut report, true);
                            }
                        }
                        BackupState::Healthy => {}
                    }
                    pending_ack = Some(report.hwm);
                    primary_done = true;
                    continue;
                }
                // The stream is internal to the group; anything else on
                // it is a bug upstream, and ignoring it beats dying.
                Ok(_) | Err(_) => continue,
            };
            entries_seen += 1;
            if matches!(state, BackupState::Healthy)
                && plan
                    .events()
                    .get(next_fault)
                    .is_some_and(|ev| ev.at_entry <= entries_seen)
            {
                let event = plan.events()[next_fault];
                next_fault += 1;
                state = match event.kind {
                    FaultKind::Stall => {
                        report.stalls += 1;
                        BackupState::Stalled {
                            left: event.window,
                            buffered: Vec::with_capacity(event.window as usize),
                        }
                    }
                    FaultKind::Crash => {
                        report.crashes += 1;
                        BackupState::Crashed { left: event.window }
                    }
                };
            }
            match &mut state {
                BackupState::Healthy => {
                    apply(store, &entry, &mut report, false);
                    pending_ack = Some(report.hwm);
                }
                BackupState::Stalled { left, buffered } => {
                    buffered.push(entry);
                    *left -= 1;
                    if *left == 0 {
                        let buffered = std::mem::take(buffered);
                        for entry in &buffered {
                            apply(store, entry, &mut report, false);
                        }
                        pending_ack = Some(report.hwm);
                        state = BackupState::Healthy;
                    }
                }
                BackupState::Crashed { left } => {
                    // The entry hit the wire while we were "down":
                    // received and lost.
                    *left -= 1;
                    if *left == 0 {
                        // Reboot: replay everything missed from the
                        // op-log, then rejoin the live stream (whose
                        // in-flight duplicates the hwm gate drops).
                        for entry in &log.entries_after(report.hwm) {
                            apply(store, entry, &mut report, true);
                        }
                        pending_ack = Some(report.hwm);
                        state = BackupState::Healthy;
                    }
                }
            }
        } else {
            // A client's replica-read connection.
            let client = source - 1;
            let down = matches!(state, BackupState::Crashed { .. });
            let refuse = |report: &mut ReplicaReport| {
                report.refused_reads += 1;
                store
                    .stats()
                    .replica_read_fallbacks
                    .fetch_add(1, crate::sync::atomic::Ordering::Relaxed);
                send_all(
                    &client_replies[client],
                    &Response::Stale { hwm: report.hwm }.encode(),
                );
            };
            match decoded {
                Ok(Request::ReplGet { key, floor }) => {
                    if down || report.hwm < floor {
                        refuse(&mut report);
                    } else {
                        send_all(&client_replies[client], &lookup(store, key).encode());
                    }
                }
                Ok(Request::ReplMultiGet { keys, floor }) => {
                    if down || report.hwm < floor {
                        // One Stale answers the whole batch.
                        refuse(&mut report);
                    } else {
                        for key in keys {
                            send_all(&client_replies[client], &lookup(store, key).encode());
                        }
                    }
                }
                Ok(Request::Stop) => live_clients -= 1,
                // Backups serve only floor-guarded reads; anything
                // else (including a corrupt frame) is refused.
                Ok(_) | Err(_) => {
                    send_all(&client_replies[client], &Response::Malformed.encode());
                }
            }
        }
    }
}

impl ReplClient {
    /// Number of shards (replication groups) this client reaches.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Reads answered by a backup so far.
    pub fn replica_serves(&self) -> u64 {
        self.replica_serves.get()
    }

    /// Replica reads that bounced to the primary so far.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks.get()
    }

    fn observe(&self, shard: usize, version: u64) {
        let floor = &self.shards[shard].floor;
        floor.set(floor.get().max(version));
    }

    fn roundtrip(conn: &Conn, request: &Request) -> Result<Response, WireError> {
        send_all(&conn.0, &request.encode());
        Self::read_response(conn)
    }

    fn read_response(conn: &Conn) -> Result<Response, WireError> {
        let head = conn.1.recv();
        Response::decode(head, || conn.1.recv())
    }

    /// Looks a key up, preferring a backup: round-robin over the
    /// shard's replicas with the freshness floor attached, falling back
    /// to the primary if the chosen backup is behind or down.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        let shard = shard_of(key, self.shards.len());
        let conn = &self.shards[shard];
        if !conn.replicas.is_empty() {
            let r = conn.rr.get() % conn.replicas.len();
            conn.rr.set(conn.rr.get().wrapping_add(1));
            let request = Request::ReplGet {
                key,
                floor: conn.floor.get(),
            };
            match Self::roundtrip(&conn.replicas[r], &request)? {
                Response::Value { version, value } => {
                    self.replica_serves.set(self.replica_serves.get() + 1);
                    self.observe(shard, version);
                    return Ok(Some((version, value)));
                }
                Response::Miss => {
                    self.replica_serves.set(self.replica_serves.get() + 1);
                    return Ok(None);
                }
                Response::Stale { .. } => {
                    self.fallbacks.set(self.fallbacks.get() + 1);
                }
                Response::Malformed => return Err(WireError::Rejected),
                _ => return Err(WireError::UnexpectedResponse("ReplGet")),
            }
        }
        match Self::roundtrip(&conn.primary, &Request::Get { key })? {
            Response::Value { version, value } => {
                self.observe(shard, version);
                Ok(Some((version, value)))
            }
            Response::Miss => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Get")),
        }
    }

    /// Batched lookup. With backups, each shard's keys go out as *one*
    /// wide, floor-guarded [`Request::ReplMultiGet`] per round (up to
    /// [`REPL_MGET_MAX`] keys spill into continuation frames) to a
    /// round-robin-chosen backup — one server visit bulk-reads the
    /// whole shard's share, the round-trip economics replica reads
    /// exist for. Shards proceed concurrently (one in-flight request
    /// per shard); stale chunks retry at the primary in
    /// [`MGET_MAX`]-sized slices. Without backups this degrades to the
    /// plain per-shard multi-get rounds. Results come back in input
    /// order.
    ///
    /// Deadlock discipline: every client holds at most one in-flight
    /// request per shard and drains shards in index order — a shared
    /// global order, so the waits-for graph over the 1-deep reply
    /// channels cannot form a cycle (the lowest-indexed blocked shard
    /// endpoint always has a drain-ready customer).
    ///
    /// # Errors
    ///
    /// [`WireError`] on the first undecodable or out-of-protocol reply.
    pub fn get_many(&self, keys: &[u64]) -> Result<Vec<ReadHit>, WireError> {
        let nshards = self.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        for (pos, &key) in keys.iter().enumerate() {
            by_shard[shard_of(key, nshards)].push(pos);
        }
        let has_replicas = self.shards.iter().any(|c| !c.replicas.is_empty());
        let chunk_size = if has_replicas {
            REPL_MGET_MAX
        } else {
            MGET_MAX
        };
        let mut results: Vec<Option<(u64, Vec<u8>)>> = (0..keys.len()).map(|_| None).collect();
        let rounds = by_shard
            .iter()
            .map(|positions| positions.len().div_ceil(chunk_size))
            .max()
            .unwrap_or(0);
        for round in 0..rounds {
            // Send phase: one chunk per shard, to a backup when one
            // exists (rotated per call — safe, since each client has a
            // single outstanding request per shard), else the primary.
            let mut inflight: Vec<(usize, Option<usize>, &[usize])> = Vec::new();
            for (shard, positions) in by_shard.iter().enumerate() {
                let conn = &self.shards[shard];
                let chunk = positions.chunks(chunk_size).nth(round).unwrap_or(&[]);
                if chunk.is_empty() {
                    continue;
                }
                let batch: Vec<u64> = chunk.iter().map(|&p| keys[p]).collect();
                let target = if conn.replicas.is_empty() {
                    None
                } else {
                    Some(conn.rr.get() % conn.replicas.len())
                };
                match target {
                    Some(r) => {
                        conn.rr.set(conn.rr.get().wrapping_add(1));
                        send_all(
                            &conn.replicas[r].0,
                            &Request::ReplMultiGet {
                                keys: batch,
                                floor: conn.floor.get(),
                            }
                            .encode(),
                        );
                    }
                    None => send_all(&conn.primary.0, &Request::MultiGet { keys: batch }.encode()),
                }
                inflight.push((shard, target, chunk));
            }
            // Drain phase, in shard order; stale backup chunks collect
            // for the primary retry pass.
            let mut retries: Vec<(usize, &[usize])> = Vec::new();
            for (shard, target, chunk) in inflight {
                let conn = &self.shards[shard];
                match target {
                    None => {
                        for &pos in chunk {
                            results[pos] = self.take_read(shard, &conn.primary, "MultiGet")?;
                        }
                    }
                    Some(r) => {
                        let pair = &conn.replicas[r];
                        // Peek the first response: `Stale` answers the
                        // whole chunk with a single frame.
                        let head = pair.1.recv();
                        match Response::decode(head, || pair.1.recv())? {
                            Response::Stale { .. } => {
                                self.fallbacks.set(self.fallbacks.get() + 1);
                                retries.push((shard, chunk));
                            }
                            Response::Value { version, value } => {
                                self.replica_serves
                                    .set(self.replica_serves.get() + chunk.len() as u64);
                                self.observe(shard, version);
                                results[chunk[0]] = Some((version, value));
                                for &pos in &chunk[1..] {
                                    results[pos] = self.take_read(shard, pair, "ReplMultiGet")?;
                                }
                            }
                            Response::Miss => {
                                self.replica_serves
                                    .set(self.replica_serves.get() + chunk.len() as u64);
                                results[chunk[0]] = None;
                                for &pos in &chunk[1..] {
                                    results[pos] = self.take_read(shard, pair, "ReplMultiGet")?;
                                }
                            }
                            Response::Malformed => return Err(WireError::Rejected),
                            _ => return Err(WireError::UnexpectedResponse("ReplMultiGet")),
                        }
                    }
                }
            }
            // Retry pass: stale chunks re-fetch authoritatively from
            // the primary, in one-line multi-get slices.
            for (shard, chunk) in retries {
                let conn = &self.shards[shard];
                for slice in chunk.chunks(MGET_MAX) {
                    let batch: Vec<u64> = slice.iter().map(|&p| keys[p]).collect();
                    send_all(&conn.primary.0, &Request::MultiGet { keys: batch }.encode());
                    for &pos in slice {
                        results[pos] = self.take_read(shard, &conn.primary, "MultiGet")?;
                    }
                }
            }
        }
        Ok(results)
    }

    /// Reads one `Value`/`Miss` response off `conn`, updating the floor.
    fn take_read(
        &self,
        shard: usize,
        conn: &Conn,
        context: &'static str,
    ) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        match Self::read_response(conn)? {
            Response::Value { version, value } => {
                self.observe(shard, version);
                Ok(Some((version, value)))
            }
            Response::Miss => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse(context)),
        }
    }

    /// Stores a value at the shard's primary; returns its new version.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        let shard = shard_of(key, self.shards.len());
        match Self::roundtrip(&self.shards[shard].primary, &Request::Set { key, value })? {
            Response::Stored { version } => {
                self.observe(shard, version);
                Ok(version)
            }
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Set")),
        }
    }

    /// Compare-and-set at the shard's primary; the inner result is the
    /// CAS outcome.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn cas(
        &self,
        key: u64,
        value: Vec<u8>,
        expected: u64,
    ) -> Result<Result<u64, u64>, WireError> {
        let shard = shard_of(key, self.shards.len());
        let request = Request::Cas {
            key,
            expected,
            value,
        };
        match Self::roundtrip(&self.shards[shard].primary, &request)? {
            Response::Stored { version } => {
                self.observe(shard, version);
                Ok(Ok(version))
            }
            Response::CasFail { current } => Ok(Err(current)),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Cas")),
        }
    }

    /// Deletes a key at the shard's primary; `Some(tombstone_version)`
    /// if it existed.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an undecodable or out-of-protocol reply.
    pub fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        let shard = shard_of(key, self.shards.len());
        match Self::roundtrip(&self.shards[shard].primary, &Request::Delete { key })? {
            Response::Deleted { version } => {
                self.observe(shard, version);
                Ok(Some(version))
            }
            Response::NotFound => Ok(None),
            Response::Malformed => Err(WireError::Rejected),
            _ => Err(WireError::UnexpectedResponse("Delete")),
        }
    }

    /// Tells every primary and backup this client is done, consuming
    /// the client.
    pub fn close(self) {
        let stop = Request::Stop.encode();
        for conn in &self.shards {
            send_all(&conn.primary.0, &stop);
            for replica in &conn.replicas {
                send_all(&replica.0, &stop);
            }
        }
    }
}

impl KvClient for ReplClient {
    fn get(&self, key: u64) -> Result<Option<(u64, Vec<u8>)>, WireError> {
        ReplClient::get(self, key)
    }

    fn get_many(&self, keys: &[u64]) -> Result<Vec<ReadHit>, WireError> {
        ReplClient::get_many(self, keys)
    }

    fn set(&self, key: u64, value: Vec<u8>) -> Result<u64, WireError> {
        ReplClient::set(self, key, value)
    }

    fn cas(&self, key: u64, value: Vec<u8>, expected: u64) -> Result<Result<u64, u64>, WireError> {
        ReplClient::cas(self, key, value, expected)
    }

    fn delete(&self, key: u64) -> Result<Option<u64>, WireError> {
        ReplClient::delete(self, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, FaultKind};
    use ssync_locks::TicketLock;

    /// Spins up a full replication deployment, runs `body` with the
    /// clients, and returns the cluster for post-mortem checks.
    fn with_replicated<F>(
        mut cluster: ReplCluster<TicketLock>,
        clients: usize,
        plans: &[FaultPlan],
        preload: u64,
        body: F,
    ) -> ReplCluster<TicketLock>
    where
        F: FnOnce(Vec<ReplClient>) + Send,
    {
        for key in 0..preload {
            cluster.preload(key, &key.to_be_bytes());
        }
        let shards = cluster.num_shards();
        let replicas = cluster.spec().replicas;
        let mode = cluster.spec().mode;
        let (primaries, backups, repl_clients) = repl_mesh(shards, replicas, clients);
        std::thread::scope(|s| {
            for (shard, endpoint) in primaries.into_iter().enumerate() {
                let store = cluster.primary().shard(shard);
                let log = cluster.log(shard).clone();
                let hwm = cluster.preload_hwm(shard);
                s.spawn(move || serve_primary(store, &log, endpoint, mode, hwm));
            }
            for (shard, shard_backups) in backups.into_iter().enumerate() {
                for (r, endpoint) in shard_backups.into_iter().enumerate() {
                    let store = cluster.replica_set(r).shard(shard);
                    let log = cluster.log(shard).clone();
                    let hwm = cluster.preload_hwm(shard);
                    let plan = plans.get(shard * replicas + r).cloned().unwrap_or_default();
                    s.spawn(move || serve_replica(store, &log, endpoint, &plan, hwm));
                }
            }
            body(repl_clients);
        });
        cluster
    }

    #[test]
    fn sync_mode_reads_own_writes_from_replicas() {
        let cluster = ReplCluster::new(2, 64, 8, ReplSpec::sync(2));
        let cluster = with_replicated(cluster, 1, &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..40u64 {
                let v = client.set(key, format!("v{key}").into_bytes()).unwrap();
                // Round-robin guarantees this read lands on a backup;
                // sync mode guarantees it sees the write anyway.
                let (version, value) = client.get(key).unwrap().unwrap();
                assert_eq!(version, v);
                assert_eq!(value, format!("v{key}").into_bytes());
            }
            // Every read was served by a backup: sync mode never
            // bounces.
            assert_eq!(client.fallbacks(), 0);
            assert_eq!(client.replica_serves(), 40);
            client.close();
        });
        assert!(cluster.converged());
        // Each backup applied each write exactly once: 40 writes × 2
        // backup sets.
        assert_eq!(cluster.replica_stats_snapshot().repl_applied, 80);
    }

    #[test]
    fn async_mode_floor_guard_bounces_stale_reads_to_primary() {
        let spec = ReplSpec {
            replicas: 1,
            mode: ReplMode::Async { max_lag: 32 },
            log_capacity: 256,
        };
        // A stall window makes the single backup provably behind while
        // the client keeps writing and reading.
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at_entry: 1,
            kind: FaultKind::Stall,
            window: 20,
        }]);
        let cluster = ReplCluster::new(1, 64, 8, spec);
        let cluster = with_replicated(cluster, 1, &[plan], 0, |mut clients| {
            let client = clients.pop().unwrap();
            let mut fallbacks_seen = 0;
            for key in 0..30u64 {
                let v = client.set(key, vec![key as u8; 8]).unwrap();
                let before = client.fallbacks();
                let (version, value) = client.get(key).unwrap().unwrap();
                // Correctness despite the stalled backup: the floor
                // guard rejects stale data, the primary answers.
                assert_eq!(version, v);
                assert_eq!(value, vec![key as u8; 8]);
                fallbacks_seen += client.fallbacks() - before;
            }
            // The stall window covers the first 20 entries, so early
            // reads must have bounced.
            assert!(fallbacks_seen > 0, "stalled backup never bounced a read");
            client.close();
        });
        assert!(cluster.converged());
    }

    #[test]
    fn crashed_backup_catches_up_from_the_log() {
        let spec = ReplSpec {
            replicas: 1,
            mode: ReplMode::Async { max_lag: 16 },
            log_capacity: 256,
        };
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at_entry: 3,
            kind: FaultKind::Crash,
            window: 4,
        }]);
        let cluster = ReplCluster::new(1, 64, 8, spec);
        let cluster = with_replicated(cluster, 1, &[plan], 0, |mut clients| {
            let client = clients.pop().unwrap();
            for key in 0..10u64 {
                client.set(key, key.to_be_bytes().to_vec()).unwrap();
            }
            client.close();
        });
        // Entries 3..=6 were lost on the wire and replayed from the
        // op-log; the backup ends byte-identical regardless.
        assert!(cluster.converged());
        let snap = cluster.replica_stats_snapshot();
        assert_eq!(snap.repl_applied, 10, "all 10 writes applied exactly once");
    }

    #[test]
    fn crash_over_delete_does_not_resurrect_the_key() {
        // The scenario the stream-order gate exists for: a put and its
        // key's later tombstone both fall inside a crash window; the
        // log replay applies both in order, and the in-flight
        // duplicates that follow must not bring the key back.
        let spec = ReplSpec {
            replicas: 1,
            mode: ReplMode::Async { max_lag: 16 },
            log_capacity: 256,
        };
        let plan = FaultPlan::from_events(vec![FaultEvent {
            at_entry: 2,
            kind: FaultKind::Crash,
            window: 2,
        }]);
        let cluster = ReplCluster::new(1, 64, 8, spec);
        let cluster = with_replicated(cluster, 1, &[plan], 0, |mut clients| {
            let client = clients.pop().unwrap();
            client.set(1, b"a".to_vec()).unwrap(); // entry 1
            client.set(2, b"b".to_vec()).unwrap(); // entry 2: crash opens
            client.delete(2).unwrap(); // entry 3: tombstone, in-window
            client.set(3, b"c".to_vec()).unwrap(); // entry 4: post-reboot
            client.close();
        });
        assert!(cluster.converged());
        assert!(cluster.replica_set(0).shard(0).get(&key_bytes(2)).is_none());
    }

    #[test]
    fn fanned_out_multi_get_returns_input_order() {
        let cluster = ReplCluster::new(2, 64, 8, ReplSpec::sync(2));
        let cluster = with_replicated(cluster, 1, &[], 64, |mut clients| {
            let client = clients.pop().unwrap();
            // 40 present keys + 10 misses, shuffled across shards;
            // chunks fan out over 3 endpoints per shard.
            let keys: Vec<u64> = (0..50).map(|i| if i < 40 { i } else { i + 100 }).collect();
            let results = client.get_many(&keys).unwrap();
            for (i, res) in results.iter().enumerate() {
                if i < 40 {
                    let (_, value) = res.as_ref().expect("present key");
                    assert_eq!(value.as_slice(), &(i as u64).to_be_bytes());
                } else {
                    assert!(res.is_none(), "key {} should miss", keys[i]);
                }
            }
            // With fresh sync replicas, most chunks are served by
            // backups.
            assert!(client.replica_serves() > 0);
            client.close();
        });
        assert!(cluster.converged());
    }

    /// Regression test for a cross-client deadlock: two clients
    /// fanning batched reads over the same two backups used to assign
    /// chunks round-robin *per client*, so they could drain the
    /// backups in opposite orders — with 1-deep reply channels and
    /// multi-frame replies, replica A blocked sending to client 1
    /// (draining replica B first) while replica B blocked sending to
    /// client 2 (draining replica A first). The fixed global endpoint
    /// order makes the waits-for graph acyclic; this test hammers the
    /// exact shape that used to wedge (skewed batches, long values,
    /// concurrent clients).
    #[test]
    fn concurrent_batched_fanout_cannot_deadlock() {
        let cluster = ReplCluster::new(2, 256, 16, ReplSpec::sync(2));
        let cluster = with_replicated(cluster, 2, &[], 512, |clients| {
            std::thread::scope(|s| {
                for (c, client) in clients.into_iter().enumerate() {
                    s.spawn(move || {
                        // Zipf-like repetition: hot keys recur within
                        // a batch, skewing chunks onto one shard.
                        for i in 0..60u64 {
                            let keys: Vec<u64> =
                                (0..24).map(|j| (i * 7 + j * j + c as u64) % 512).collect();
                            let results = client.get_many(&keys).unwrap();
                            for (j, res) in results.iter().enumerate() {
                                let (_, value) = res.as_ref().expect("preloaded key");
                                assert_eq!(value.as_slice(), &keys[j].to_be_bytes());
                            }
                        }
                        client.close();
                    });
                }
            });
        });
        assert!(cluster.converged());
    }

    #[test]
    fn zero_replicas_degenerates_to_the_plain_service() {
        let cluster = ReplCluster::new(2, 64, 8, ReplSpec::async_bounded(0));
        let cluster = with_replicated(cluster, 2, &[], 0, |clients| {
            std::thread::scope(|s| {
                for (c, client) in clients.into_iter().enumerate() {
                    s.spawn(move || {
                        let base = c as u64 * 1000;
                        for i in 0..50 {
                            client.set(base + i, vec![c as u8; 16]).unwrap();
                            let (_, value) = client.get(base + i).unwrap().unwrap();
                            assert_eq!(value, vec![c as u8; 16]);
                        }
                        assert_eq!(client.replica_serves(), 0);
                        client.close();
                    });
                }
            });
        });
        assert!(cluster.converged(), "no replicas is trivially converged");
        assert_eq!(cluster.primary().len(), 100);
        // Nothing was ever logged: no backup could consume it.
        assert!(cluster.log(0).is_empty() && cluster.log(1).is_empty());
    }

    #[test]
    fn malformed_frames_at_primary_and_backup_get_refused() {
        let cluster = ReplCluster::new(1, 64, 8, ReplSpec::sync(1));
        with_replicated(cluster, 1, &[], 0, |mut clients| {
            let client = clients.pop().unwrap();
            client.set(1, b"x".to_vec()).unwrap();
            // Garbage straight at the primary.
            let conn = &client.shards[0];
            conn.primary.0.send([0xEE; ssync_mp::MSG_WORDS]);
            let head = conn.primary.1.recv();
            assert_eq!(
                Response::decode(head, || unreachable!()).unwrap(),
                Response::Malformed
            );
            // A plain Get at a backup is out of protocol there.
            send_all(&conn.replicas[0].0, &Request::Get { key: 1 }.encode());
            let head = conn.replicas[0].1.recv();
            assert_eq!(
                Response::decode(head, || unreachable!()).unwrap(),
                Response::Malformed
            );
            // Both servers still alive.
            assert!(client.get(1).unwrap().is_some());
            client.close();
        });
    }
}

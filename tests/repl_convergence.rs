//! Replication convergence, checked the way the model-checking
//! optimistic-replication literature frames it, but in-process:
//! arbitrary operation sequences + seeded replica crashes, stalls, and
//! leader crashes, with the property that once the run drains, **every
//! live replica's final state equals the leader's, and the leader's
//! equals a sequential BTreeMap model** — no acknowledged write lost,
//! no matter how many leaders died along the way.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ssync::locks::TicketLock;
use ssync::repl::fault::FaultSpec;
use ssync::repl::service::{ReplCluster, ReplMode, ReplSpec};
use ssync::repl::workload::run_replicated_closed_loop;
use ssync::repl::{repl_mesh, serve_node, FaultPlan, NodeConfig, ReplClient};
use ssync::srv::router::{key_bytes, shard_of};
use ssync::srv::workload::{KeyDist, Mix, ValueSize, WorkloadSpec};

/// Spins up every node of `cluster`'s replication groups with the
/// seeded `faults` schedules and runs `body` with the clients.
fn with_cluster<F>(cluster: &ReplCluster<TicketLock>, faults: &FaultSpec, clients: usize, body: F)
where
    F: FnOnce(Vec<ReplClient>) + Send,
{
    let map = cluster.map().clone();
    let (endpoints, repl_clients) = repl_mesh(&map, clients);
    std::thread::scope(|s| {
        let map = &map;
        for (shard, shard_eps) in endpoints.into_iter().enumerate() {
            for endpoint in shard_eps {
                let node = endpoint.node();
                let store = cluster.node_store(shard, node);
                let log = cluster.log(shard).clone();
                let cfg = NodeConfig {
                    shard,
                    mode: cluster.spec().mode,
                    initial_hwm: cluster.preload_hwm(shard),
                    backup_plan: if node == 0 {
                        FaultPlan::none()
                    } else {
                        faults.plan_for(shard, node - 1)
                    },
                    crash_plan: faults.primary_plan_for(shard),
                };
                s.spawn(move || serve_node(store, &log, map, endpoint, cfg));
            }
        }
        body(repl_clients);
    });
}

type Model = BTreeMap<u64, (Vec<u8>, u64)>;

/// Mirror of one shard's `next_version` counter, tracking which entry
/// indices land on *logged* writes. Failed CAS attempts burn a version
/// without logging anything, so entry indices are not dense in logged
/// writes — and a scheduled leader crash fires only when its
/// `at_entry` coincides exactly with a logged write's index.
#[derive(Default)]
struct ShardEntries {
    burned: u64,
    logged: Vec<u64>,
}

impl ShardEntries {
    fn next(&self) -> u64 {
        1 + self.burned + self.logged.len() as u64
    }
    fn log_one(&mut self) {
        let e = self.next();
        self.logged.push(e);
    }
    fn burn_one(&mut self) {
        self.burned += 1;
    }
}

/// Drives `ops` from one client against `cluster` while maintaining
/// the sequential model, asserting read-your-writes throughout.
/// `entries` mirrors each shard's version allocation (entry indices
/// are per-shard, so fault reachability is too).
fn drive_model_ops(
    client: &ReplClient,
    ops: &[(u64, u8, u8)],
    model: &mut Model,
    entries: &mut [ShardEntries],
) {
    let shards = entries.len();
    for (key, op, val) in ops {
        let (key, val) = (*key, *val);
        match op {
            0 => {
                let v = client.set(key, vec![val; 4]).unwrap();
                model.insert(key, (vec![val; 4], v));
                entries[shard_of(key, shards)].log_one();
            }
            1 => {
                // Reads route through replicas with the floor guard;
                // they must always see the model state — even while a
                // failover is in flight.
                let got = client.get(key).unwrap();
                match model.get(&key) {
                    Some((mv, mver)) => {
                        let (ver, value) = got.expect("model says present");
                        assert_eq!((&value, ver), (mv, *mver));
                    }
                    None => assert!(got.is_none()),
                }
            }
            2 => match model.get(&key).map(|(_, v)| *v) {
                Some(mver) => {
                    let v = client
                        .cas(key, vec![val; 3], mver)
                        .unwrap()
                        .expect("fresh cas must win");
                    model.insert(key, (vec![val; 3], v));
                    entries[shard_of(key, shards)].log_one();
                }
                None => {
                    assert_eq!(client.cas(key, vec![val; 3], 1).unwrap(), Err(0));
                    // A losing CAS still consumes a version slot.
                    entries[shard_of(key, shards)].burn_one();
                }
            },
            _ => {
                let existed = model.remove(&key).is_some();
                let deleted = client.delete(key).unwrap().is_some();
                assert_eq!(deleted, existed);
                if deleted {
                    entries[shard_of(key, shards)].log_one();
                }
            }
        }
    }
}

/// Asserts that, shard by shard, the surviving leader's contents equal
/// the model and every live follower converged to them.
fn assert_matches_model(cluster: &ReplCluster<TicketLock>, model: &Model) {
    let mut leader_contents: Vec<(Vec<u8>, u64, Vec<u8>)> = Vec::new();
    for shard in 0..cluster.num_shards() {
        let leader = cluster
            .map()
            .view(shard)
            .leader
            .expect("a leader must survive the schedule");
        for (k, ver, v) in cluster.node_store(shard, leader).dump() {
            leader_contents.push((k.to_vec(), ver, v.to_vec()));
        }
    }
    leader_contents.sort();
    let mut model_contents: Vec<(Vec<u8>, u64, Vec<u8>)> = model
        .iter()
        .map(|(k, (v, ver))| (key_bytes(*k).to_vec(), *ver, v.clone()))
        .collect();
    model_contents.sort();
    assert_eq!(leader_contents, model_contents);
    assert!(cluster.converged());
}

proptest! {
    /// Arbitrary get/set/cas/delete sequences from one client, with a
    /// seeded crash/stall schedule on two async backups: the replicas
    /// converge to the primary, and the primary matches the model.
    #[test]
    fn replicas_converge_to_the_model(
        ops in proptest::collection::vec((0u64..16, 0u8..4, any::<u8>()), 1..80),
        fault_seed in any::<u64>(),
    ) {
        let spec = ReplSpec {
            replicas: 2,
            mode: ReplMode::Async { max_lag: 24 },
            log_capacity: 512,
        };
        let faults = FaultSpec {
            seed: fault_seed,
            faults_per_replica: 3,
            max_window: 8,
            spacing: 6,
            primary_crashes: 0,
        };
        let cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 64, 8, spec);
        // Model: key -> (value, version), maintained from the client's
        // own observations (single client => sequential history).
        let mut model: Model = BTreeMap::new();
        let mut entries = [ShardEntries::default(), ShardEntries::default()];
        with_cluster(&cluster, &faults, 1, |mut clients| {
            let client = clients.pop().unwrap();
            drive_model_ops(&client, &ops, &mut model, &mut entries);
            client.close();
        });
        assert_matches_model(&cluster, &model);
        prop_assert_eq!(cluster.map().total_failovers(), 0);
    }
}

proptest! {
    /// The chaos soak: arbitrary op sequences × seeded *leader*
    /// crashes × backup stalls/crashes (async) or bare successions
    /// (sync). Acked writes survive every failover — the client's
    /// sequential model still matches the surviving leader exactly,
    /// live replicas converge, and the failover count equals the
    /// number of scheduled crashes the run actually reached.
    #[test]
    fn chaos_soaked_failovers_lose_no_acknowledged_write(
        ops in proptest::collection::vec((0u64..16, 0u8..4, any::<u8>()), 20..100),
        fault_seed in any::<u64>(),
        sync in any::<bool>(),
        crashes in 1usize..=2,
    ) {
        let (mode, faults_per_replica, max_window, spacing) = if sync {
            // Backup stall/crash windows deadlock a sync leader by
            // construction, so sync soaks only the succession line.
            (ReplMode::Sync, 0, 0, 0)
        } else {
            (ReplMode::Async { max_lag: 24 }, 2, 8, 6)
        };
        let spec = ReplSpec {
            replicas: 2,
            mode,
            log_capacity: 512,
        };
        let faults = FaultSpec {
            seed: fault_seed,
            faults_per_replica,
            max_window,
            spacing,
            primary_crashes: crashes,
        };
        let cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 64, 8, spec);
        let mut model: Model = BTreeMap::new();
        let mut entries = [ShardEntries::default(), ShardEntries::default()];
        with_cluster(&cluster, &faults, 1, |mut clients| {
            let client = clients.pop().unwrap();
            drive_model_ops(&client, &ops, &mut model, &mut entries);
            client.close();
        });
        assert_matches_model(&cluster, &model);
        // Exactly the scheduled crashes whose entry index landed on a
        // logged write fired — no failover lost, none invented. Entry
        // indices are global across successive leaders but *per
        // shard*, and an index burned by a failed CAS (or never
        // reached) schedules nothing.
        let mut expected = 0u64;
        for (shard, shard_entries) in entries.iter().enumerate() {
            let plan = faults.primary_plan_for(shard);
            expected += plan
                .events()
                .iter()
                .filter(|ev| shard_entries.logged.contains(&ev.at_entry))
                .count() as u64;
            prop_assert!(
                cluster.map().view(shard).leader.is_some(),
                "crashes never outnumber backups, so every shard keeps a leader"
            );
        }
        prop_assert_eq!(cluster.map().total_failovers(), expected);
    }
}

#[test]
fn sync_mode_gives_read_your_writes_through_replicas() {
    // The integration-level contract: in sync mode a client's write is
    // visible to its very next read even though that read is served by
    // a backup. With a single client, "zero fallbacks" is an actual
    // invariant (every write is fully acked before the client's next
    // read, and its floor only ever holds versions every backup has
    // applied) — concurrent clients can race a not-yet-acked write at
    // one backup and legitimately bounce, so the deterministic form of
    // the assertion needs one worker.
    let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 128, 16, ReplSpec::sync(2));
    let spec = WorkloadSpec {
        keys: 256,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::YCSB_B,
        vsize: ValueSize::Fixed(32),
        batch: 1,
        seed: 0x51AC,
    };
    let report = run_replicated_closed_loop(&mut cluster, &spec, 1, 900, &FaultSpec::none());
    assert_eq!(
        report.fallbacks, 0,
        "a single sync-mode client must never see a stale replica read"
    );
    assert!(report.replica_serves > 0, "replicas must carry reads");
    assert_eq!(report.misses, 0, "preloaded keyspace, no deletes");
    assert!(report.converged);
}

#[test]
fn sync_mode_concurrent_clients_read_correctly_through_replicas() {
    // The multi-worker variant: cross-client races may bounce a read
    // to the primary (another client's write can be visible at one
    // backup before the other has acked), but every read still returns
    // correct data — hits stay total on the preloaded no-delete
    // keyspace and the groups converge.
    let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 128, 16, ReplSpec::sync(2));
    let spec = WorkloadSpec {
        keys: 256,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::YCSB_B,
        vsize: ValueSize::Fixed(32),
        batch: 1,
        seed: 0x51AC,
    };
    let workers = ssync::core::cores::test_threads(2).max(2);
    let report = run_replicated_closed_loop(&mut cluster, &spec, workers, 600, &FaultSpec::none());
    assert!(report.replica_serves > 0, "replicas must carry reads");
    assert_eq!(report.misses, 0, "preloaded keyspace, no deletes");
    assert!(report.converged);
}

#[test]
fn async_fault_runs_replay_and_converge_end_to_end() {
    // The full loop at integration level: async mode, crash+stall
    // schedules, churn mix (CAS + deletes). Two identical runs replay
    // the same faults and both converge.
    let run = || {
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(2, 128, 16, ReplSpec::async_bounded(2));
        let spec = WorkloadSpec {
            keys: 128,
            dist: KeyDist::Uniform,
            mix: Mix::CHURN,
            vsize: ValueSize::Fixed(24),
            batch: 1,
            seed: 0xFA11,
        };
        let faults = FaultSpec {
            seed: 0xFA11,
            faults_per_replica: 3,
            max_window: 10,
            spacing: 16,
            primary_crashes: 0,
        };
        run_replicated_closed_loop(&mut cluster, &spec, 1, 800, &faults)
    };
    let a = run();
    let b = run();
    assert!(a.converged && b.converged);
    assert_eq!(a.issued, b.issued);
    assert_eq!(a.entries, b.entries);
    assert_eq!(
        (a.crashes, a.stalls, a.from_log),
        (b.crashes, b.stalls, b.from_log)
    );
    assert!(a.crashes + a.stalls > 0);
}

#[test]
fn seeded_failover_runs_replay_end_to_end() {
    // The deterministic failover demo: a fixed seed kills two
    // successive leaders per shard mid-workload; the run converges
    // with zero acknowledged-write loss, and a second run replays the
    // same history — same issued ops, same entries, same failovers
    // (sync mode keeps even the succession order deterministic: equal
    // high-water marks break ties to the lowest live id).
    let run = || {
        let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 128, 16, ReplSpec::sync(2));
        let spec = WorkloadSpec {
            keys: 128,
            dist: KeyDist::Zipfian { theta: 0.99 },
            mix: Mix::YCSB_A,
            vsize: ValueSize::Fixed(24),
            batch: 1,
            seed: 0xF01A,
        };
        let faults = FaultSpec {
            seed: 0xF01A,
            faults_per_replica: 0,
            max_window: 0,
            spacing: 0,
            primary_crashes: 2,
        };
        run_replicated_closed_loop(&mut cluster, &spec, 1, 500, &faults)
    };
    let a = run();
    assert_eq!(a.failovers, 4, "both scheduled crashes fire on both shards");
    assert_eq!(a.unavailability.len(), 4);
    assert!(a.converged, "survivors converge with no acked write lost");
    let b = run();
    assert_eq!(a.issued, b.issued);
    assert_eq!(a.entries, b.entries);
    assert_eq!(a.failovers, b.failovers);
    assert!(b.converged);
}

//! Replication convergence, checked the way the model-checking
//! optimistic-replication literature frames it, but in-process:
//! arbitrary operation sequences + seeded replica crashes and stalls,
//! with the property that once the run drains, **every replica's final
//! state equals the primary's, and the primary's equals a sequential
//! BTreeMap model**.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ssync::locks::TicketLock;
use ssync::repl::fault::FaultSpec;
use ssync::repl::service::{ReplCluster, ReplMode, ReplSpec};
use ssync::repl::workload::run_replicated_closed_loop;
use ssync::repl::{repl_mesh, serve_primary, serve_replica};
use ssync::srv::router::key_bytes;
use ssync::srv::workload::{KeyDist, Mix, ValueSize, WorkloadSpec};

proptest! {
    /// Arbitrary get/set/cas/delete sequences from one client, with a
    /// seeded crash/stall schedule on two async backups: the replicas
    /// converge to the primary, and the primary matches the model.
    #[test]
    fn replicas_converge_to_the_model(
        ops in proptest::collection::vec((0u64..16, 0u8..4, any::<u8>()), 1..80),
        fault_seed in any::<u64>(),
    ) {
        let spec = ReplSpec {
            replicas: 2,
            mode: ReplMode::Async { max_lag: 24 },
            log_capacity: 512,
        };
        let faults = FaultSpec {
            seed: fault_seed,
            faults_per_replica: 3,
            max_window: 8,
            spacing: 6,
        };
        let cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 64, 8, spec);
        // Model: key -> (value, version), maintained from the client's
        // own observations (single client => sequential history).
        let mut model: BTreeMap<u64, (Vec<u8>, u64)> = BTreeMap::new();
        let shards = cluster.num_shards();
        let replicas = spec.replicas;
        let (primaries, backups, mut clients) = repl_mesh(shards, replicas, 1);
        std::thread::scope(|s| {
            for (shard, endpoint) in primaries.into_iter().enumerate() {
                let store = cluster.primary().shard(shard);
                let log = cluster.log(shard).clone();
                s.spawn(move || serve_primary(store, &log, endpoint, spec.mode, 0));
            }
            for (shard, shard_backups) in backups.into_iter().enumerate() {
                for (r, endpoint) in shard_backups.into_iter().enumerate() {
                    let store = cluster.replica_set(r).shard(shard);
                    let log = cluster.log(shard).clone();
                    let plan = faults.plan_for(shard, r);
                    s.spawn(move || serve_replica(store, &log, endpoint, &plan, 0));
                }
            }
            let client = clients.pop().unwrap();
            for (key, op, val) in &ops {
                let (key, val) = (*key, *val);
                match op {
                    0 => {
                        let v = client.set(key, vec![val; 4]).unwrap();
                        model.insert(key, (vec![val; 4], v));
                    }
                    1 => {
                        // Reads route through replicas with the floor
                        // guard; they must always see the model state.
                        let got = client.get(key).unwrap();
                        match model.get(&key) {
                            Some((mv, mver)) => {
                                let (ver, value) = got.expect("model says present");
                                assert_eq!((&value, ver), (mv, *mver));
                            }
                            None => assert!(got.is_none()),
                        }
                    }
                    2 => match model.get(&key).map(|(_, v)| *v) {
                        Some(mver) => {
                            let v = client
                                .cas(key, vec![val; 3], mver)
                                .unwrap()
                                .expect("fresh cas must win");
                            model.insert(key, (vec![val; 3], v));
                        }
                        None => {
                            assert_eq!(client.cas(key, vec![val; 3], 1).unwrap(), Err(0));
                        }
                    },
                    _ => {
                        let existed = model.remove(&key).is_some();
                        assert_eq!(client.delete(key).unwrap().is_some(), existed);
                    }
                }
            }
            client.close();
        });
        // Primary equals the model…
        let mut primary_contents: Vec<(Vec<u8>, u64, Vec<u8>)> = Vec::new();
        for s in 0..shards {
            for (k, ver, v) in cluster.primary().shard(s).dump() {
                primary_contents.push((k.to_vec(), ver, v.to_vec()));
            }
        }
        primary_contents.sort();
        let mut model_contents: Vec<(Vec<u8>, u64, Vec<u8>)> = model
            .iter()
            .map(|(k, (v, ver))| (key_bytes(*k).to_vec(), *ver, v.clone()))
            .collect();
        model_contents.sort();
        prop_assert_eq!(primary_contents, model_contents);
        // …and every replica equals the primary, crashes and all.
        prop_assert!(cluster.converged());
    }
}

#[test]
fn sync_mode_gives_read_your_writes_through_replicas() {
    // The integration-level contract: in sync mode a client's write is
    // visible to its very next read even though that read is served by
    // a backup. With a single client, "zero fallbacks" is an actual
    // invariant (every write is fully acked before the client's next
    // read, and its floor only ever holds versions every backup has
    // applied) — concurrent clients can race a not-yet-acked write at
    // one backup and legitimately bounce, so the deterministic form of
    // the assertion needs one worker.
    let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 128, 16, ReplSpec::sync(2));
    let spec = WorkloadSpec {
        keys: 256,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::YCSB_B,
        vsize: ValueSize::Fixed(32),
        batch: 1,
        seed: 0x51AC,
    };
    let report = run_replicated_closed_loop(&mut cluster, &spec, 1, 900, &FaultSpec::none());
    assert_eq!(
        report.fallbacks, 0,
        "a single sync-mode client must never see a stale replica read"
    );
    assert!(report.replica_serves > 0, "replicas must carry reads");
    assert_eq!(report.misses, 0, "preloaded keyspace, no deletes");
    assert!(report.converged);
}

#[test]
fn sync_mode_concurrent_clients_read_correctly_through_replicas() {
    // The multi-worker variant: cross-client races may bounce a read
    // to the primary (another client's write can be visible at one
    // backup before the other has acked), but every read still returns
    // correct data — hits stay total on the preloaded no-delete
    // keyspace and the groups converge.
    let mut cluster: ReplCluster<TicketLock> = ReplCluster::new(2, 128, 16, ReplSpec::sync(2));
    let spec = WorkloadSpec {
        keys: 256,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::YCSB_B,
        vsize: ValueSize::Fixed(32),
        batch: 1,
        seed: 0x51AC,
    };
    let workers = ssync::core::cores::test_threads(2).max(2);
    let report = run_replicated_closed_loop(&mut cluster, &spec, workers, 600, &FaultSpec::none());
    assert!(report.replica_serves > 0, "replicas must carry reads");
    assert_eq!(report.misses, 0, "preloaded keyspace, no deletes");
    assert!(report.converged);
}

#[test]
fn async_fault_runs_replay_and_converge_end_to_end() {
    // The full loop at integration level: async mode, crash+stall
    // schedules, churn mix (CAS + deletes). Two identical runs replay
    // the same faults and both converge.
    let run = || {
        let mut cluster: ReplCluster<TicketLock> =
            ReplCluster::new(2, 128, 16, ReplSpec::async_bounded(2));
        let spec = WorkloadSpec {
            keys: 128,
            dist: KeyDist::Uniform,
            mix: Mix::CHURN,
            vsize: ValueSize::Fixed(24),
            batch: 1,
            seed: 0xFA11,
        };
        let faults = FaultSpec {
            seed: 0xFA11,
            faults_per_replica: 3,
            max_window: 10,
            spacing: 16,
        };
        run_replicated_closed_loop(&mut cluster, &spec, 1, 800, &faults)
    };
    let a = run();
    let b = run();
    assert!(a.converged && b.converged);
    assert_eq!(a.issued, b.issued);
    assert_eq!(a.entries, b.entries);
    assert_eq!(
        (a.crashes, a.stalls, a.from_log),
        (b.crashes, b.stalls, b.from_log)
    );
    assert!(a.crashes + a.stalls > 0);
}

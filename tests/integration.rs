//! Cross-crate integration tests: the native stack working together.
//!
//! Thread counts scale to the host via `ssync::core::cores` so these
//! pass (fast) on single-core CI boxes and still exercise real
//! parallelism on big machines; tests that are only meaningful with
//! true parallelism skip themselves on small hosts.

use std::sync::atomic::Ordering;

use ssync::core::cores::{has_cores, test_threads};
use ssync::ht::HashTable;
use ssync::kv::KvStore;
use ssync::locks::{AnyLock, HticketLock, Lock, LockKind, McsLock, RawLock, TicketLock};
use ssync::mp::channel::channel;
use ssync::srv::router::ShardRouter;
use ssync::srv::service::{ring_mesh, serve, wire_mesh};
use ssync::srv::workload::{
    run_closed_loop, run_closed_loop_on, KeyDist, Mix, Transport, ValueSize, WorkloadSpec,
};
use ssync::tm::shared::TmHeap;

#[test]
fn hash_table_under_every_lock_kind_via_counter() {
    // The table is generic over the lock; AnyLock is not Default, so
    // exercise representative algorithms via the typed tables and the
    // full set through raw counters.
    for kind in LockKind::ALL {
        let lock = AnyLock::new(kind, 2);
        let token = lock.lock();
        lock.unlock(token);
    }
    let threads = test_threads(4) as u64;
    let ht: HashTable<TicketLock> = HashTable::new(32);
    std::thread::scope(|s| {
        for t in 0..threads {
            let ht = &ht;
            s.spawn(move || {
                for i in 0..250 {
                    ht.put(t * 1_000 + i, i);
                }
            });
        }
    });
    assert_eq!(ht.len(), threads as usize * 250);
}

#[test]
fn hierarchical_lock_protects_hash_table() {
    let threads = test_threads(4) as u64;
    let ht: HashTable<HticketLock> = HashTable::new(16);
    std::thread::scope(|s| {
        for t in 0..threads {
            let ht = &ht;
            s.spawn(move || {
                ssync::locks::set_thread_cluster(t as usize % 2);
                for i in 0..200 {
                    ht.put(t * 1_000 + i, i);
                    assert_eq!(ht.get(t * 1_000 + i), Some(i));
                }
            });
        }
    });
    assert_eq!(ht.len(), threads as usize * 200);
}

#[test]
fn kv_store_and_tm_compose_with_locks() {
    // A KV store whose values are updated transactionally elsewhere: the
    // two subsystems share the same lock crate without interference.
    let threads = test_threads(3) as u32;
    let kv: KvStore<TicketLock> = KvStore::new(64, 8);
    let heap: TmHeap<TicketLock> = TmHeap::new(8);
    std::thread::scope(|s| {
        for t in 0..threads {
            let (kv, heap) = (&kv, &heap);
            s.spawn(move || {
                for i in 0..200u32 {
                    kv.set(format!("{t}:{i}").as_bytes(), b"x".as_slice());
                    heap.run(|tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)?;
                        Ok(())
                    });
                }
            });
        }
    });
    let total = u64::from(threads) * 200;
    assert_eq!(kv.len(), total as usize);
    assert_eq!(heap.peek(0), total);
    assert_eq!(kv.stats().sets.load(Ordering::Relaxed), total);
}

#[test]
fn message_passing_pipeline_feeds_hash_table() {
    // A producer streams updates over an ssmp channel; a consumer applies
    // them to the lock-based table: the Figure 11 "mp" structure at
    // native scale.
    let ht: HashTable<TicketLock> = HashTable::new(64);
    let (tx, rx) = channel();
    std::thread::scope(|s| {
        s.spawn(move || {
            for k in 0..500u64 {
                tx.send([1, k, k * 3, 0, 0, 0, 0]);
            }
            tx.send([0, 0, 0, 0, 0, 0, 0]); // poison
        });
        let ht = &ht;
        s.spawn(move || loop {
            let m = rx.recv();
            if m[0] == 0 {
                break;
            }
            ht.put(m[1], m[2]);
        });
    });
    assert_eq!(ht.len(), 500);
    assert_eq!(ht.get(123), Some(369));
}

#[test]
fn busy_spin_ping_pong_makes_wall_clock_progress() {
    // `recv` polls a cached line and only falls back to yielding when
    // oversubscribed. The wall-clock bound below is only a fair
    // assertion when sender and receiver truly run in parallel; on a
    // small host every handoff goes through the scheduler, so the test
    // is gated on core count rather than left to flake.
    if !has_cores(3) {
        eprintln!("skipping busy_spin_ping_pong: needs >2 physical cores");
        return;
    }
    let (tx_req, rx_req) = channel();
    let (tx_rep, rx_rep) = channel();
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            for _ in 0..10_000 {
                let m = rx_req.recv();
                tx_rep.send(m);
            }
        });
        for i in 0..10_000u64 {
            tx_req.send([i; 7]);
            assert_eq!(rx_rep.recv()[0], i);
        }
    });
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "busy-spin round trips took {:?}",
        start.elapsed()
    );
}

#[test]
fn sharded_service_composes_locks_mp_and_kv() {
    // The full serving stack: client threads -> ssync-mp channels ->
    // per-shard server threads -> KvStore shards under MCS locks. The
    // first place locks, message passing, and the store meet under one
    // load; thread counts scale to the host.
    let clients = test_threads(3);
    let shards = 2;
    let router: ShardRouter<McsLock> = ShardRouter::new(shards, 64, 8);
    let (endpoints, service_clients) = wire_mesh(shards, clients);
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let store = router.shard(shard);
            s.spawn(move || serve(store, endpoint));
        }
        for (c, client) in service_clients.into_iter().enumerate() {
            s.spawn(move || {
                let base = c as u64 * 10_000;
                for i in 0..150 {
                    let version = client.set(base + i, vec![c as u8; 24]).unwrap();
                    let (v, value) = client.get(base + i).unwrap().unwrap();
                    assert_eq!((v, value.len()), (version, 24));
                }
                // Batched reads across shards come back in order.
                let keys: Vec<u64> = (0..150).map(|i| base + i).collect();
                assert!(client.get_many(&keys).unwrap().iter().all(|r| r.is_some()));
                client.close();
            });
        }
    });
    assert_eq!(router.len(), clients * 150);
    let snap = router.stats_snapshot();
    assert_eq!(snap.sets, clients as u64 * 150);
    assert_eq!(snap.misses, 0);
}

#[test]
fn sharded_service_runs_on_rings_with_pipelined_reads() {
    // The same full-stack composition over the ring transport: the
    // pipelined client keeps a window of reads in flight per shard and
    // drains them FIFO, and the optimistic read path (the stores'
    // default) answers without stripe-lock round-trips.
    let clients = test_threads(3);
    let shards = 2;
    let router: ShardRouter<McsLock> = ShardRouter::new(shards, 64, 8);
    let (endpoints, service_clients) = ring_mesh(shards, clients, 32);
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let store = router.shard(shard);
            s.spawn(move || serve(store, endpoint));
        }
        for (c, client) in service_clients.into_iter().enumerate() {
            s.spawn(move || {
                let base = c as u64 * 10_000;
                for i in 0..120 {
                    client.set(base + i, vec![c as u8; 24]).unwrap();
                }
                // Pipelined: fire a window of reads before draining.
                let mut pending: Vec<Vec<u64>> = vec![Vec::new(); shards];
                let mut in_flight = 0;
                for i in 0..120 {
                    let shard = client.send_get(base + i);
                    pending[shard].push(base + i);
                    in_flight += 1;
                    if in_flight == 16 {
                        for (shard, keys) in pending.iter_mut().enumerate() {
                            for key in keys.drain(..) {
                                let (_, value) = client.read_get_reply(shard).unwrap().unwrap();
                                assert_eq!(value, vec![c as u8; 24], "key {key}");
                            }
                        }
                        in_flight = 0;
                    }
                }
                for (shard, keys) in pending.into_iter().enumerate() {
                    for _ in keys {
                        assert!(client.read_get_reply(shard).unwrap().is_some());
                    }
                }
                client.close();
            });
        }
    });
    assert_eq!(router.len(), clients * 120);
    assert_eq!(router.stats_snapshot().misses, 0);
}

#[test]
fn ring_and_oneline_closed_loops_agree_on_ycsb() {
    // Transport is a performance knob, not a semantics knob: on a
    // delete-free mix both transports observe identical hit tallies
    // and store-side set counts, for the same deterministic op stream.
    let spec = WorkloadSpec {
        keys: 96,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::YCSB_B,
        vsize: ValueSize::Uniform { min: 8, max: 96 },
        batch: 1,
        seed: 7,
    };
    let workers = test_threads(2);
    let a: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
    let base = run_closed_loop(&a, &spec, workers, 250);
    let b: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
    let ring = run_closed_loop_on(
        &b,
        &spec,
        workers,
        250,
        Transport::Ring {
            depth: 32,
            window: 8,
        },
    );
    assert_eq!(base.issued, ring.issued);
    assert_eq!((base.hits, base.misses), (ring.hits, ring.misses));
    assert_eq!(base.store.sets, ring.store.sets);
}

#[test]
fn closed_loop_workload_is_deterministic_in_op_counts() {
    // The workload engine's determinism contract, end to end: two runs
    // of the same spec against fresh routers issue identical op
    // streams, whatever the scheduler does.
    let spec = WorkloadSpec {
        keys: 128,
        dist: KeyDist::Zipfian { theta: 0.99 },
        mix: Mix::YCSB_A,
        vsize: ValueSize::Uniform { min: 8, max: 64 },
        batch: 1,
        seed: 42,
    };
    let run = || {
        let router: ShardRouter<TicketLock> = ShardRouter::new(2, 64, 8);
        run_closed_loop(&router, &spec, 2, 300).issued
    };
    assert_eq!(run(), run());
}

#[test]
fn guarded_lock_wrapper_accepts_explicit_raw_instances() {
    // Cohort locks need construction parameters; Lock::with_raw carries
    // them through the data-owning wrapper.
    let lock = Lock::with_raw(vec![0u64; 4], HticketLock::new(2));
    lock.lock()[0] = 7;
    assert_eq!(lock.lock()[0], 7);
}

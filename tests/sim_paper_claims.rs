//! End-to-end checks of the paper's headline observations, run against
//! the simulator through the same drivers the figures use. These are the
//! "shape" assertions EXPERIMENTS.md reports — kept cheap enough for the
//! regular test suite.

use ssync::ccbench::drivers::{
    atomic_mops, lock_mops, mp_one_to_one, ssht_mops, uncontested_latency, SshtBackend,
};
use ssync::core::Platform;
use ssync::simsync::locks::SimLockKind;
use ssync::simsync::workloads::atomics::AtomicKind;
use ssync::simsync::workloads::ssht::SshtConfig;

#[test]
fn crossing_sockets_is_a_killer() {
    // Observation 1: cross-socket latency is 2-7.5x intra-socket, at
    // every layer. Check at the lock layer via the Figure 6 ladder.
    for kind in [SimLockKind::Tas, SimLockKind::Ticket] {
        let local = uncontested_latency(Platform::Xeon, kind, 1);
        let remote = uncontested_latency(Platform::Xeon, kind, 30);
        assert!(
            remote > 2.0 * local,
            "{kind:?}: local={local:.0} remote={remote:.0}"
        );
    }
}

#[test]
fn intra_socket_uniformity_matters() {
    // Observation 3: under high contention the uniform Niagara scales
    // better than the non-uniform Tilera. Compare best-lock throughput
    // scalability at 36/32 threads, 4 locks.
    let best = |p: Platform, t: usize| {
        SimLockKind::FLAT
            .iter()
            .map(|&k| lock_mops(p, k, t, 4))
            .fold(f64::MIN, f64::max)
    };
    let niagara_scal = best(Platform::Niagara, 32) / best(Platform::Niagara, 1);
    let tilera_scal = best(Platform::Tilera, 32) / best(Platform::Tilera, 1);
    assert!(
        niagara_scal > tilera_scal,
        "niagara {niagara_scal:.2}x vs tilera {tilera_scal:.2}x"
    );
}

#[test]
fn message_passing_wins_under_extreme_contention_only() {
    // Observation 5 / Figure 11: message passing beats the best lock at
    // 12 buckets and high thread counts (clearest on the Opteron, whose
    // incomplete directory cripples contended locks) and is strictly
    // slower at 512 buckets. The paper likewise has one platform where
    // mp does not win (the Niagara); in our model that platform is the
    // Xeon (see EXPERIMENTS.md).
    let high = SshtConfig {
        buckets: 12,
        entries: 12,
        get_pct: 80,
    };
    let low = SshtConfig {
        buckets: 512,
        entries: 12,
        get_pct: 80,
    };
    let best_lock = |p: Platform, cfg: SshtConfig, threads: usize| {
        SimLockKind::ALL
            .iter()
            .map(|&k| ssht_mops(p, SshtBackend::Lock(k), threads, cfg))
            .fold(f64::MIN, f64::max)
    };
    let mp_high = ssht_mops(Platform::Opteron, SshtBackend::MessagePassing, 36, high);
    let lock_high = best_lock(Platform::Opteron, high, 36);
    assert!(
        mp_high > lock_high,
        "high contention: mp={mp_high:.2} best lock={lock_high:.2}"
    );
    let mp_low = ssht_mops(Platform::Xeon, SshtBackend::MessagePassing, 36, low);
    let lock_low = best_lock(Platform::Xeon, low, 36);
    assert!(
        mp_low < lock_low,
        "low contention: mp={mp_low:.2} best lock={lock_low:.2}"
    );
}

#[test]
fn atomic_stress_shapes_per_observation() {
    // Figure 4's two regimes: multi-socket collapse vs single-socket
    // plateau, for the same operation.
    let xeon_1 = atomic_mops(Platform::Xeon, AtomicKind::Fai, 1);
    let xeon_40 = atomic_mops(Platform::Xeon, AtomicKind::Fai, 40);
    assert!(xeon_1 > 2.0 * xeon_40, "xeon: {xeon_1:.1} vs {xeon_40:.1}");
    let tilera_12 = atomic_mops(Platform::Tilera, AtomicKind::Fai, 12);
    let tilera_36 = atomic_mops(Platform::Tilera, AtomicKind::Fai, 36);
    assert!(
        tilera_36 > 0.5 * tilera_12,
        "tilera plateau: {tilera_12:.1} vs {tilera_36:.1}"
    );
}

#[test]
fn simple_locks_win_low_contention_everywhere() {
    // Observation 7: at 128 locks, TICKET (or TAS) matches or beats the
    // queue locks on every platform.
    for p in Platform::ALL {
        let t = p.topology().num_cores().min(36);
        let simple =
            lock_mops(p, SimLockKind::Ticket, t, 128).max(lock_mops(p, SimLockKind::Tas, t, 128));
        let complex =
            lock_mops(p, SimLockKind::Mcs, t, 128).max(lock_mops(p, SimLockKind::Clh, t, 128));
        assert!(
            simple > 0.85 * complex,
            "{p:?}: simple={simple:.2} complex={complex:.2}"
        );
    }
}

#[test]
fn tilera_hardware_mp_beats_coherence_mp() {
    let (hw_ow, hw_rt) = mp_one_to_one(Platform::Tilera, 7, true);
    let (sw_ow, sw_rt) = mp_one_to_one(Platform::Tilera, 7, false);
    assert!(hw_ow < sw_ow, "one-way: hw={hw_ow:.0} sw={sw_ow:.0}");
    assert!(hw_rt < sw_rt, "round-trip: hw={hw_rt:.0} sw={sw_rt:.0}");
}

#[test]
fn coherence_stats_explain_lock_behaviour() {
    // MCS generates no more cross-socket transfers per handoff than TAS
    // under identical contention — the mechanism behind Figure 5.
    use ssync::sim::Sim;
    use ssync::simsync::locks::{make_lock, LockConfig};
    use ssync::simsync::workloads::lock_stress::LockStress;
    let traffic = |kind: SimLockKind| {
        let mut sim = Sim::new(Platform::Xeon, 3);
        let cfg = LockConfig::for_placement(&sim, 20);
        let lock = make_lock(kind, &mut sim, &cfg);
        let data = sim.alloc_line_for_core(cfg.home_core);
        for tid in 0..20 {
            sim.spawn_on_core(
                cfg.thread_cores[tid],
                Box::new(LockStress::new(vec![lock.clone()], vec![data], tid)),
            );
        }
        sim.run_until(300_000);
        let ops = sim.total_ops().max(1);
        sim.stats().transfers as f64 / ops as f64
    };
    let tas = traffic(SimLockKind::Tas);
    let mcs = traffic(SimLockKind::Mcs);
    assert!(
        mcs < tas,
        "transfers per op: mcs={mcs:.1} should be < tas={tas:.1}"
    );
}

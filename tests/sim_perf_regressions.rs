//! Engine-performance regression guards for the wake-on-write
//! wait-list path: determinism under replay, and event-count ceilings
//! for the drivers behind the two most event-hungry artifacts (the
//! Figure 5 contended-lock sweep and the Figure 11 hash table). Before
//! the wait-lists, these workloads scheduled one event per spin poll —
//! millions per run; a ceiling regression means some polling loop fell
//! off the wait-list path.

use std::rc::Rc;

use ssync::core::Platform;
use ssync::sim::Sim;
use ssync::simsync::locks::{make_lock, LockConfig, SimLockKind};
use ssync::simsync::workloads::lock_stress::LockStress;
use ssync::simsync::workloads::ssht::{SshtConfig, SshtTable, SshtWorker};

/// Measurement window (cycles) — the Figure 5 driver's window.
const WINDOW: u64 = 600_000;

/// Runs the Figure 5 scenario (`threads` threads, one lock) and returns
/// `(events, ops, now, transfers)`.
fn fig5_run(platform: Platform, kind: SimLockKind, threads: usize) -> (u64, u64, u64, u64) {
    let mut sim = Sim::new(platform, 0x10C5);
    let cfg = LockConfig::for_placement(&sim, threads);
    let lock = make_lock(kind, &mut sim, &cfg);
    let data = sim.alloc_line_for_core(cfg.home_core);
    for tid in 0..threads {
        let w = LockStress::new(vec![Rc::clone(&lock)], vec![data], tid);
        sim.spawn_on_core(cfg.thread_cores[tid], Box::new(w));
    }
    sim.run_until(WINDOW);
    (
        sim.events(),
        sim.total_ops(),
        sim.now(),
        sim.stats().transfers,
    )
}

#[test]
fn contended_run_replays_identically() {
    // Same seed, same workload, twice: identical event counts, op
    // counts, clocks and traffic. The wait-list wake order is part of
    // the engine's determinism contract.
    for kind in [SimLockKind::Ttas, SimLockKind::Mcs, SimLockKind::Ticket] {
        let a = fig5_run(Platform::Xeon, kind, 20);
        let b = fig5_run(Platform::Xeon, kind, 20);
        assert_eq!(a, b, "{kind:?} replay diverged");
    }
}

#[test]
fn fig5_driver_event_ceilings() {
    // Full-machine extreme contention. Explicit polling spent one event
    // per ~7-cycle poll per waiter (hundreds of thousands per platform
    // at a 600k-cycle window); the wait-list path wakes each waiter a
    // few times per handoff. Ceilings are ~3x current measurements so
    // they catch order-of-magnitude regressions, not noise.
    for (platform, kind, threads, ceiling) in [
        (Platform::Opteron, SimLockKind::Ttas, 48, 20_000),
        (Platform::Xeon, SimLockKind::Ttas, 80, 25_000),
        (Platform::Niagara, SimLockKind::Ticket, 64, 200_000),
        (Platform::Tilera, SimLockKind::Ticket, 36, 100_000),
    ] {
        let (events, ops, _, _) = fig5_run(platform, kind, threads);
        assert!(ops > 0, "{platform:?}: no ops completed");
        assert!(
            events < ceiling,
            "{platform:?} {kind:?} x{threads}: {events} events (ceiling {ceiling})"
        );
    }
}

#[test]
fn fig11_driver_event_ceiling() {
    // The Figure 11 high-contention hash table (12 buckets) on the
    // Opteron at 36 threads: per-bucket locks ride the wait-list path.
    let cfg = SshtConfig {
        buckets: 12,
        entries: 12,
        get_pct: 80,
    };
    let threads = 36;
    let mut sim = Sim::new(Platform::Opteron, 0x5547);
    let lock_cfg = LockConfig::for_placement(&sim, threads);
    let locks: Vec<_> = (0..cfg.buckets)
        .map(|_| make_lock(SimLockKind::Ticket, &mut sim, &lock_cfg))
        .collect();
    let table = Rc::new(SshtTable::new(&mut sim, cfg, locks, &lock_cfg.thread_cores));
    for tid in 0..threads {
        sim.spawn_on_core(
            lock_cfg.thread_cores[tid],
            Box::new(SshtWorker::new(Rc::clone(&table), tid)),
        );
    }
    sim.run_until(WINDOW);
    assert!(sim.total_ops() > 0);
    let events = sim.events();
    assert!(
        events < 600_000,
        "fig11 driver: {events} events (ceiling 600000)"
    );
}

#[test]
fn wait_lists_do_not_change_completed_work() {
    // Throughput sanity: the wait-list engine still completes work and
    // still shows the paper's contended-collapse shape (ops at 1 thread
    // >> per-thread ops at full machine on a multi-socket).
    let (_, ops1, _, _) = fig5_run(Platform::Opteron, SimLockKind::Ttas, 1);
    let (_, ops48, _, _) = fig5_run(Platform::Opteron, SimLockKind::Ttas, 48);
    assert!(ops1 > 0 && ops48 > 0);
    assert!(
        ops1 > 2 * ops48 / 48,
        "collapse shape lost: {ops1} vs {ops48}/48"
    );
}

//! Live-migration convergence, framed like `repl_convergence.rs`:
//! arbitrary operation sequences split around a faulted 2 → 4
//! resharding, with the property that **the fleet's final contents
//! equal a sequential `BTreeMap` model exactly** — every acknowledged
//! write at its new owner with its version intact, every delete still
//! deleted — no matter how many times the copy stream or the
//! coordinator died along the way. A fixed-seed twin run is the
//! replay regression: the whole migration, faults included, is a
//! deterministic function of its seeds.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ssync::cluster::{
    cluster_mesh, run_reshard_coordinator, serve_cluster_node, ClusterClient, MigrationReport,
    ReshardSpec, ShardMap,
};
use ssync::kv::KvStore;
use ssync::locks::TicketLock;
use ssync::repl::fault::FaultSpec;
use ssync::repl::OpLog;
use ssync::srv::slot_of;

/// The client's sequential oracle: key → (acked version, value).
type Model = BTreeMap<u64, (u64, Vec<u8>)>;

/// One scripted op: `(key, kind, payload_byte)` with kind 0 = get,
/// 1 = set, 2 = cas-from-model, 3 = delete.
type Op = (u64, u8, u8);

/// One shard's final contents: sorted `(key, version, value)` triples.
type Dump = Vec<(u64, u64, Vec<u8>)>;

/// Applies `ops` through the client, asserting every reply against
/// the model (single client, quiet fleet: replies are deterministic).
fn drive_model_ops(client: &ClusterClient<'_>, ops: &[Op], model: &mut Model) {
    for &(key, kind, byte) in ops {
        match kind % 4 {
            0 => {
                let got = client.get(key).expect("get");
                let want = model.get(&key).map(|&(v, ref val)| (v, val.clone()));
                assert_eq!(got, want, "read diverged from the model at key {key}");
            }
            1 => {
                let value = vec![byte; 8];
                let version = client.set(key, value.clone()).expect("set");
                model.insert(key, (version, value));
            }
            2 => {
                let value = vec![byte.wrapping_add(1); 8];
                match model.get(&key).map(|&(v, _)| v) {
                    Some(expected) => {
                        let version = client
                            .cas(key, value.clone(), expected)
                            .expect("cas")
                            .expect("model version is current, CAS must win");
                        model.insert(key, (version, value));
                    }
                    None => {
                        let version = client.set(key, value.clone()).expect("set");
                        model.insert(key, (version, value));
                    }
                }
            }
            _ => {
                let deleted = client.delete(key).expect("delete");
                assert_eq!(deleted.is_some(), model.remove(&key).is_some());
            }
        }
    }
}

/// Runs `ops[..split]`, reshards 2 → 4 under the seeded fault spec,
/// runs the rest, and returns the migration report plus the final
/// per-shard store dumps (sorted triples) and the model.
fn run_sequence(
    ops: &[Op],
    split: usize,
    fault_seed: u64,
    source_crashes: usize,
    coordinator_crashes: usize,
) -> (MigrationReport, Vec<Dump>, Model) {
    let map = ShardMap::new(2);
    let stores: Vec<KvStore<TicketLock>> = (0..4).map(|_| KvStore::new(64, 8)).collect();
    let logs: Vec<OpLog> = (0..4).map(|_| OpLog::new(1 << 12)).collect();
    let (endpoints, mut conns, mig) = cluster_mesh(4, 1, 16, 64);
    let mut model = Model::new();
    let mut report = MigrationReport::default();
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let (store, log, map) = (&stores[shard], &logs[shard], &map);
            s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
        }
        let client = ClusterClient::new(&map, conns.pop().unwrap());
        drive_model_ops(&client, &ops[..split], &mut model);
        let store_refs: Vec<&KvStore<TicketLock>> = stores.iter().collect();
        let log_refs: Vec<&OpLog> = logs.iter().collect();
        let spec = ReshardSpec {
            faults: FaultSpec {
                seed: fault_seed,
                faults_per_replica: 0,
                max_window: 0,
                spacing: 12,
                primary_crashes: 0,
            },
            source_crashes,
            coordinator_crashes,
            chunk: 16,
            ..ReshardSpec::clean(4)
        };
        report = run_reshard_coordinator(&map, &store_refs, &log_refs, &mig, &spec);
        drive_model_ops(&client, &ops[split..], &mut model);
        client.close();
    });
    let mut stores = stores;
    for store in stores.iter_mut() {
        store.purge_retired();
    }
    let dumps = stores
        .iter()
        .map(|store| {
            store
                .dump()
                .into_iter()
                .map(|(key, version, value)| {
                    let k = u64::from_be_bytes(key.as_ref().try_into().expect("8-byte keys"));
                    (k, version, value.as_ref().to_vec())
                })
                .collect()
        })
        .collect();
    (report, dumps, model)
}

proptest! {
    /// The tentpole property: arbitrary op sequences around a faulted
    /// 2 → 4 split leave the fleet *identical* to the sequential
    /// model — keys at their mod-4 owners, versions and bytes exact,
    /// nothing lost, nothing resurrected — and the coordinator's
    /// attempt accounting matches its crash schedule exactly.
    #[test]
    fn migration_preserves_model(
        ops in proptest::collection::vec((0u64..40, 0u8..4, any::<u8>()), 24..96),
        split_pct in 0usize..=100,
        fault_seed in any::<u64>(),
        source_crashes in 0usize..=2,
        coordinator_crashes in 0usize..=2,
    ) {
        let split = ops.len() * split_pct / 100;
        let (report, dumps, model) =
            run_sequence(&ops, split, fault_seed, source_crashes, coordinator_crashes);
        prop_assert_eq!(report.final_epoch, 2);
        prop_assert_eq!(report.attempts, coordinator_crashes as u64 + 1);
        prop_assert_eq!(report.coordinator_restarts, coordinator_crashes as u64);

        // Direction one: everything in the fleet is modelled and
        // placed at its owner.
        let mut fleet = BTreeMap::new();
        for (shard, dump) in dumps.iter().enumerate() {
            for (key, version, value) in dump {
                prop_assert!(
                    slot_of(*key) % 4 == shard,
                    "key {} left at a shard that no longer owns it",
                    key
                );
                fleet.insert(*key, (*version, value.clone()));
            }
        }
        // Direction two: the fleet *is* the model.
        prop_assert_eq!(&fleet, &model);
    }
}

/// The replay regression: with every seed pinned, two full runs —
/// traffic, stream crashes, coordinator crashes, cutover — produce
/// the same migration report and byte-identical final stores. (The
/// quiet-during-migration harness makes even the copy accounting
/// deterministic, so the reports must match field for field.)
#[test]
fn fixed_seed_faulted_split_replays_exactly() {
    let ops: Vec<Op> = (0..64)
        .map(|i| (i % 23, (i % 4) as u8, (i * 7 % 251) as u8))
        .collect();
    let run = || run_sequence(&ops, 48, 0x0DD_B10B, 2, 2);
    let (report_a, dumps_a, model_a) = run();
    let (report_b, dumps_b, model_b) = run();
    assert_eq!(report_a, report_b, "migration reports must replay exactly");
    assert_eq!(dumps_a, dumps_b, "final stores must replay exactly");
    assert_eq!(model_a, model_b);
    assert!(report_a.copy_restarts >= 1, "stream crashes must fire");
    assert_eq!(report_a.coordinator_restarts, 2);
    assert_eq!(report_a.attempts, 3);
}

/// The counters satellite, observed end-to-end: a stale client (map
/// snapshotted before the cutover) bounces once per moved key it
/// touches, and the server-side counters in `StatsSnapshot` record
/// the redirects.
#[test]
fn stale_client_counters_surface_through_stats() {
    let map = ShardMap::new(2);
    let stores: Vec<KvStore<TicketLock>> = (0..4).map(|_| KvStore::new(64, 8)).collect();
    let logs: Vec<OpLog> = (0..4).map(|_| OpLog::new(1 << 12)).collect();
    let (endpoints, mut conns, mig) = cluster_mesh(4, 2, 16, 64);
    std::thread::scope(|s| {
        for (shard, endpoint) in endpoints.into_iter().enumerate() {
            let (store, log, map) = (&stores[shard], &logs[shard], &map);
            s.spawn(move || serve_cluster_node(shard, store, log, map, endpoint));
        }
        let stale = ClusterClient::new(&map, conns.pop().unwrap());
        let client = ClusterClient::new(&map, conns.pop().unwrap());
        for key in 0..64u64 {
            client.set(key, vec![1; 4]).unwrap();
        }
        // `stale` snapshotted the 2-shard map; reshard to 4 under it.
        let store_refs: Vec<&KvStore<TicketLock>> = stores.iter().collect();
        let log_refs: Vec<&OpLog> = logs.iter().collect();
        run_reshard_coordinator(&map, &store_refs, &log_refs, &mig, &ReshardSpec::clean(4));
        assert_eq!(stale.cached_epoch(), 1);
        for key in 0..64u64 {
            assert_eq!(stale.get(key).unwrap().unwrap().1, vec![1; 4]);
        }
        assert!(stale.redirects() > 0, "a stale map must chase redirects");
        assert_eq!(stale.cached_epoch(), 2);
        stale.close();
        client.close();
    });
    let merged = stores
        .iter()
        .map(|s| s.stats_snapshot())
        .fold(None::<ssync::kv::StatsSnapshot>, |acc, s| match acc {
            None => Some(s),
            Some(a) => Some(a.merge(&s)),
        })
        .unwrap();
    assert!(merged.wrong_shard_redirects > 0);
    // Moved keys really moved: the store that served key 0 before the
    // split no longer holds keys owned elsewhere.
    for (shard, store) in stores.iter().enumerate() {
        for (key, _, _) in store.dump() {
            let k = u64::from_be_bytes(key.as_ref().try_into().unwrap());
            assert_eq!(slot_of(k) % 4, shard);
        }
    }
}

//! Property-based tests on core invariants (proptest).

use proptest::prelude::*;

use ssync::core::topology::{DistClass, Platform};
use ssync::ht::HashTable;
use ssync::kv::KvStore;
use ssync::locks::TicketLock;
use ssync::sim::memory::SharerSet;
use ssync::sim::program::{Action, MemOpKind};
use ssync::sim::Sim;
use ssync::srv::shard_of;
use ssync::tm::shared::TmHeap;

proptest! {
    /// SharerSet behaves like a set of small integers.
    #[test]
    fn sharer_set_models_hashset(ops in proptest::collection::vec((0usize..127, any::<bool>()), 0..64)) {
        let mut set = SharerSet::EMPTY;
        let mut model = std::collections::HashSet::new();
        for (core, add) in ops {
            if add {
                set.add(core);
                model.insert(core);
            } else {
                set.remove(core);
                model.remove(&core);
            }
            prop_assert_eq!(set.count() as usize, model.len());
            prop_assert_eq!(set.contains(core), model.contains(&core));
        }
        let from_iter: Vec<usize> = set.iter().collect();
        let mut from_model: Vec<usize> = model.into_iter().collect();
        from_model.sort_unstable();
        prop_assert_eq!(from_iter, from_model);
    }

    /// Topology distances are symmetric and zero only on the diagonal,
    /// on every platform.
    #[test]
    fn topology_distance_symmetry(pi in 0usize..4, a in 0usize..80, b in 0usize..80) {
        let p = Platform::ALL[pi];
        let t = p.topology();
        let (a, b) = (a % t.num_cores(), b % t.num_cores());
        let d_ab = t.distance(a, b);
        let d_ba = t.distance(b, a);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert_eq!(d_ab == DistClass::Zero, a == b);
    }

    /// The hash table agrees with a HashMap model under any op sequence.
    #[test]
    fn hash_table_models_hashmap(ops in proptest::collection::vec((0u64..32, 0u8..3, any::<u64>()), 0..200)) {
        let ht: HashTable<TicketLock> = HashTable::new(4);
        let mut model = std::collections::HashMap::new();
        for (key, op, value) in ops {
            match op {
                0 => prop_assert_eq!(ht.put(key, value), model.insert(key, value)),
                1 => prop_assert_eq!(ht.get(key), model.get(&key).copied()),
                _ => prop_assert_eq!(ht.remove(key), model.remove(&key)),
            }
        }
        prop_assert_eq!(ht.len(), model.len());
    }

    /// The KV store agrees with a BTreeMap model under any op sequence
    /// (get/set/cas/delete), versions grow strictly monotonically, and
    /// the stats counters match model-derived counts.
    #[test]
    fn kv_store_models_btreemap(ops in proptest::collection::vec((0u64..24, 0u8..4, any::<u8>()), 0..200)) {
        let kv: KvStore<TicketLock> = KvStore::new(32, 4);
        // Model: key -> (value byte, version).
        let mut model: std::collections::BTreeMap<u64, (u8, u64)> = std::collections::BTreeMap::new();
        let mut last_version = 0u64;
        let (mut hits, mut misses, mut sets, mut deletes, mut cas_failures) = (0u64, 0, 0, 0, 0);
        for (key, op, val) in ops {
            let kb = key.to_be_bytes();
            match op {
                0 => {
                    // Set: always stores, version strictly grows.
                    let v = kv.set(&kb, vec![val]);
                    prop_assert!(v > last_version, "version {v} not past {last_version}");
                    last_version = v;
                    model.insert(key, (val, v));
                    sets += 1;
                }
                1 => {
                    // Get: value and version must match the model.
                    let got = kv.get_with_version(&kb);
                    match model.get(&key) {
                        Some(&(mv, mver)) => {
                            let (ver, value) = got.expect("model says present");
                            prop_assert_eq!(value.as_ref(), &[mv][..]);
                            prop_assert_eq!(ver, mver);
                            hits += 1;
                        }
                        None => {
                            prop_assert!(got.is_none());
                            misses += 1;
                        }
                    }
                }
                2 => {
                    // CAS: correct expected version on even vals, stale
                    // (version 0 is never assigned) on odd.
                    match (model.get(&key).copied(), val % 2 == 0) {
                        (Some((_, mver)), true) => {
                            let v = kv.cas(&kb, vec![val], mver).expect("fresh cas must win");
                            prop_assert!(v > last_version);
                            last_version = v;
                            model.insert(key, (val, v));
                            sets += 1;
                        }
                        (Some((_, mver)), false) => {
                            prop_assert_eq!(kv.cas(&kb, vec![val], 0), Err(mver));
                            cas_failures += 1;
                        }
                        (None, _) => {
                            prop_assert_eq!(kv.cas(&kb, vec![val], 0), Err(0));
                            cas_failures += 1;
                        }
                    }
                }
                _ => {
                    let expected = model.remove(&key).is_some();
                    prop_assert_eq!(kv.delete(&kb), expected);
                    if expected {
                        deletes += 1;
                    }
                }
            }
        }
        prop_assert_eq!(kv.len(), model.len());
        for (key, (mv, mver)) in &model {
            let kb = key.to_be_bytes();
            let (ver, value) = kv.get_with_version(&kb).expect("model key present");
            prop_assert_eq!(value.as_ref(), &[*mv][..]);
            prop_assert_eq!(ver, *mver);
            hits += 1;
        }
        let snap = kv.stats_snapshot();
        prop_assert_eq!(snap.hits, hits);
        prop_assert_eq!(snap.misses, misses);
        prop_assert_eq!(snap.sets, sets);
        prop_assert_eq!(snap.cas_failures, cas_failures);
        prop_assert_eq!(snap.deletes, deletes);
    }

    /// Optimistic lock-free reads under a *live* writer thread: every
    /// value a reader observes is fully formed (never a torn mix of
    /// two writes) and is one the writer actually committed for that
    /// key — checked against the writer's own (version, value) history
    /// — and once the writer is done, the store agrees with a
    /// sequential BTreeMap model. The locked fallback path is part of
    /// the same protocol, so whichever path each read took, the
    /// observation must be in the history.
    ///
    /// A third thread hammers [`KvStore::reclaim_pass`] the whole time:
    /// epoch collection runs concurrently with the reader's pinned
    /// traversals and the writer's retirements, so any grace-period
    /// bug frees a node under the reader's feet and the history check
    /// (or the allocator) catches it. At quiescence every retired node
    /// is accounted for: reclaimed online plus drained afterwards
    /// equals the replacements and deletes the writer performed.
    #[test]
    fn optimistic_reads_agree_with_writer_history(
        ops in proptest::collection::vec((0u64..6, 0u8..3, any::<u8>()), 20..120),
    ) {
        const KEYS: u64 = 6;
        let kv: KvStore<TicketLock> = KvStore::new(16, 2);
        // Preload so early reads hit; preloads are history too.
        let mut history: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); KEYS as usize];
        let mut model: std::collections::BTreeMap<u64, (Vec<u8>, u64)> =
            std::collections::BTreeMap::new();
        for key in 0..KEYS {
            let value = vec![key as u8; 9];
            let v = kv.set(&key.to_be_bytes(), value.clone());
            history[key as usize].push((v, value.clone()));
            model.insert(key, (value, v));
        }
        // Nodes the writer unlinks (replacements and deletes): every
        // one must eventually be reclaimed, online or at the drain.
        let mut retired = 0u64;
        let writer_done = std::sync::atomic::AtomicBool::new(false);
        let observations = std::thread::scope(|s| {
            let kv = &kv;
            let writer_done = &writer_done;
            let reader = s.spawn(move || {
                // Hammer reads round-robin while the writer below runs;
                // record every hit for post-hoc history validation.
                let mut seen: Vec<(u64, u64, Vec<u8>)> = Vec::new();
                for i in 0..400u64 {
                    let key = i % KEYS;
                    if let Some((version, value)) = kv.get_with_version(&key.to_be_bytes()) {
                        seen.push((key, version, value.as_ref().to_vec()));
                    }
                    if i % 16 == 0 {
                        std::thread::yield_now();
                    }
                }
                seen
            });
            let collector = s.spawn(move || {
                // Concurrent epoch collection: advance-and-collect in a
                // tight loop for the writer's whole run, freeing
                // retired nodes while the reader may be pinned over
                // them.
                while !writer_done.load(std::sync::atomic::Ordering::Acquire) {
                    kv.reclaim_pass();
                    std::thread::yield_now();
                }
            });
            // The writer runs on this thread, so `model`/`history`
            // stay plain locals.
            for &(key, op, val) in &ops {
                let kb = key.to_be_bytes();
                match op {
                    0 => {
                        let value = vec![val, key as u8, val, val, val, val, val, val];
                        if model.contains_key(&key) {
                            retired += 1;
                        }
                        let v = kv.set(&kb, value.clone());
                        history[key as usize].push((v, value.clone()));
                        model.insert(key, (value, v));
                    }
                    1 => {
                        if let Some(mver) = model.get(&key).map(|(_, v)| *v) {
                            let value = vec![val ^ 0xA5; 17];
                            let v = kv.cas(&kb, value.clone(), mver).expect("armed cas wins");
                            history[key as usize].push((v, value.clone()));
                            model.insert(key, (value, v));
                            retired += 1;
                        }
                    }
                    _ => {
                        let expected = model.remove(&key).is_some();
                        assert_eq!(kv.delete(&kb), expected);
                        if expected {
                            retired += 1;
                        }
                    }
                }
                std::thread::yield_now();
            }
            writer_done.store(true, std::sync::atomic::Ordering::Release);
            collector.join().expect("collector panicked");
            reader.join().expect("reader panicked")
        });
        for (key, version, value) in observations {
            let written = &history[key as usize];
            prop_assert!(
                written.iter().any(|(v, bytes)| *v == version && *bytes == value),
                "reader saw ({version}, {value:?}) for key {key}, not in writer history {written:?}"
            );
        }
        // Quiesced: the store equals the sequential model.
        for key in 0..KEYS {
            let got = kv.get_with_version(&key.to_be_bytes());
            match model.get(&key) {
                Some((value, version)) => {
                    let (v, bytes) = got.expect("model says present");
                    prop_assert_eq!(v, *version);
                    prop_assert_eq!(bytes.as_ref(), value.as_slice());
                }
                None => prop_assert!(got.is_none()),
            }
        }
        // Reclamation accounting: with no pins left, three passes carry
        // the global epoch through the grace period of every remaining
        // bag, so the backlog drains to zero and online frees plus this
        // drain cover exactly the nodes the writer unlinked.
        for _ in 0..3 {
            kv.reclaim_pass();
        }
        let snap = kv.stats_snapshot();
        prop_assert_eq!(snap.reclaim_backlog, 0);
        prop_assert_eq!(kv.reclaim_backlog(), 0);
        prop_assert_eq!(snap.nodes_reclaimed, retired);
    }

    /// Shard routing is a pure function onto `0..shards`, and dense
    /// keyspaces spread over every shard.
    #[test]
    fn shard_routing_total_and_stable(keys in proptest::collection::vec(any::<u64>(), 1..64), shards in 1usize..9) {
        for &key in &keys {
            let s = shard_of(key, shards);
            prop_assert!(s < shards);
            prop_assert_eq!(s, shard_of(key, shards));
        }
    }

    /// Simulated FAI never loses counts, for any platform, thread count
    /// and per-thread op count.
    #[test]
    fn sim_fai_is_atomic(pi in 0usize..4, threads in 1usize..12, per in 1u32..40) {
        let p = Platform::ALL[pi];
        let mut sim = Sim::new(p, 99);
        let cores = sim.topology().placement(threads);
        let line = sim.alloc_line_for_core(cores[0]);
        for &c in &cores {
            let mut left = per;
            sim.spawn_on_core(c, ssync::sim::program::fn_program(move |_r, _e| {
                if left == 0 {
                    return Action::Done;
                }
                left -= 1;
                Action::Fai(line)
            }));
        }
        sim.run_to_completion();
        prop_assert_eq!(sim.memory().line(line).value, threads as u64 * u64::from(per));
    }

    /// Protocol invariant: after any op sequence, a Modified/Exclusive
    /// line has an owner and no sharers; Shared has sharers and no owner.
    #[test]
    fn protocol_state_invariants(ops in proptest::collection::vec((0usize..6, 0usize..8), 1..80)) {
        use ssync::sim::protocol;
        let p = Platform::Opteron;
        let mut sim = Sim::new(p, 5);
        let line_id = sim.alloc_line(0);
        for (op, core) in ops {
            let core = core * 6; // Spread over dies.
            let kind = [
                MemOpKind::Load,
                MemOpKind::Store,
                MemOpKind::Cas,
                MemOpKind::Fai,
                MemOpKind::Flush,
                MemOpKind::Prefetchw,
            ][op];
            protocol::apply(p, sim.memory_mut().line_mut(line_id), core, kind);
            let line = sim.memory().line(line_id);
            match line.state {
                ssync::sim::CohState::Modified | ssync::sim::CohState::Exclusive => {
                    prop_assert!(line.owner.is_some());
                    prop_assert!(line.sharers.is_empty());
                }
                ssync::sim::CohState::Shared => {
                    prop_assert!(line.owner.is_none());
                    prop_assert!(!line.sharers.is_empty());
                }
                ssync::sim::CohState::Owned => {
                    prop_assert!(line.owner.is_some());
                }
                ssync::sim::CohState::Invalid => {
                    prop_assert!(line.owner.is_none());
                    prop_assert!(line.sharers.is_empty());
                }
            }
        }
    }

    /// STM transfers preserve the total for arbitrary transfer lists.
    #[test]
    fn stm_transfers_preserve_total(transfers in proptest::collection::vec((0usize..8, 0usize..8), 0..50)) {
        let heap: TmHeap<TicketLock> = TmHeap::new(8);
        for a in 0..8 {
            heap.poke(a, 1000);
        }
        for (from, to) in transfers {
            if from == to {
                continue;
            }
            heap.run(|tx| {
                let a = tx.read(from)?;
                let b = tx.read(to)?;
                tx.write(from, a.wrapping_sub(5))?;
                tx.write(to, b.wrapping_add(5))?;
                Ok(())
            });
        }
        let total: u64 = (0..8).map(|a| heap.peek(a)).sum();
        prop_assert_eq!(total, 8000);
    }

    /// The simulator is deterministic: same seed, same final state.
    #[test]
    fn sim_is_deterministic(seed in any::<u64>(), threads in 1usize..8) {
        let run = || {
            let mut sim = Sim::new(Platform::Tilera, seed);
            let cores = sim.topology().placement(threads);
            let line = sim.alloc_line_for_core(cores[0]);
            for &c in &cores {
                let mut left = 10;
                sim.spawn_on_core(c, ssync::sim::program::fn_program(move |_r, _e| {
                    if left == 0 {
                        return Action::Done;
                    }
                    left -= 1;
                    Action::Fai(line)
                }));
            }
            sim.run_to_completion();
            (sim.now(), sim.events())
        };
        prop_assert_eq!(run(), run());
    }
}

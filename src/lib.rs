//! # ssync
//!
//! Umbrella crate for SSYNC-RS, a Rust reproduction of the SOSP'13 study
//! *"Everything You Always Wanted to Know About Synchronization but Were
//! Afraid to Ask"* (David, Guerraoui, Trigonakis).
//!
//! The workspace mirrors the paper's SSYNC suite:
//!
//! * [`locks`] (`ssync-locks`) — the `libslock` lock library: nine lock
//!   algorithms behind one interface.
//! * [`mp`] (`ssync-mp`) — the `libssmp` message-passing library built on
//!   cache-line-sized one-directional buffers.
//! * [`ht`] (`ssync-ht`) — the `ssht` concurrent hash table.
//! * [`kv`] (`ssync-kv`) — a Memcached-model in-memory key-value store.
//! * [`srv`] (`ssync-srv`) — the sharded KV *service*: shard routing over
//!   `ssync-kv` stores, a request/response protocol over `ssync-mp`
//!   channels, and a deterministic workload engine (zipfian skew, YCSB
//!   mixes) for driving it under load.
//! * [`repl`] (`ssync-repl`) — per-shard primary/backup replication over
//!   the service: op-log streaming, sync/async acknowledgement, replica
//!   reads with freshness floors, and deterministic fault injection.
//! * [`cluster`] (`ssync-cluster`) — elastic resharding over the
//!   replicated service: an epoch-versioned cluster map routing fixed
//!   key slots to a growable shard fleet, and a live migration
//!   protocol (bulk copy, op-log delta replay, fenced atomic cutover)
//!   that splits a running fleet without dropping acknowledged writes.
//! * [`tm`] (`ssync-tm`) — a TM2C-model software transactional memory.
//! * [`sim`] (`ssync-sim`) — a discrete-event cache-coherence simulator of
//!   the paper's four platforms, calibrated to its Tables 2 and 3.
//! * [`simsync`] (`ssync-simsync`) — the SSYNC software stack expressed as
//!   simulator programs, used to regenerate the paper's figures.
//! * [`ccbench`] (`ssync-ccbench`) — the experiment drivers for every
//!   table and figure of the evaluation.
//! * [`figures`] (`ssync-figures`) — renderers for the paper's tables
//!   and figures, plus the `repro-all` binary that regenerates them.
//! * [`chk`] (`ssync-chk`) — the exhaustive interleaving checker (shadow
//!   atomics + DPOR-lite scheduler) behind the `--cfg ssync_chk` model
//!   suite, plus the `ssync-lint` ordering-discipline pass.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! paper-versus-measured results.

pub use ssync_ccbench as ccbench;
pub use ssync_chk as chk;
pub use ssync_cluster as cluster;
pub use ssync_core as core;
pub use ssync_figures as figures;
pub use ssync_ht as ht;
pub use ssync_kv as kv;
pub use ssync_locks as locks;
pub use ssync_mp as mp;
pub use ssync_repl as repl;
pub use ssync_sim as sim;
pub use ssync_simsync as simsync;
pub use ssync_srv as srv;
pub use ssync_tm as tm;

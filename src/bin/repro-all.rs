//! Workspace-root alias for `ssync-figures`'s `repro-all`: regenerates
//! every table and figure into `results/`, so `cargo run --release
//! --bin repro-all` works from a clean checkout without `-p`. An
//! optional argument filters by artifact name (`repro-all fig05`).
fn main() {
    let filter = std::env::args().nth(1);
    if let Err(msg) = ssync::figures::repro_filtered(filter.as_deref()) {
        eprintln!("{msg}");
        std::process::exit(2);
    }
}

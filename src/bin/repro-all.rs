//! Workspace-root alias for `ssync-figures`'s `repro-all`: regenerates
//! every table and figure into `results/`, so `cargo run --release
//! --bin repro-all` works from a clean checkout without `-p`.
fn main() {
    ssync::figures::repro_all();
}
